package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenarios"
)

// testSweep narrows the default sweep to the scenario-7 family (12 variants:
// three speeds, two distances, seeded and corrected), small enough that the
// coordinator tests stay fast but real enough to produce collisions,
// early terminations and both defect configurations.
func testSweep(t *testing.T) scenarios.Sweep {
	t.Helper()
	sw, err := scenarios.SweepBySize("default")
	if err != nil {
		t.Fatal(err)
	}
	var kept []scenarios.Family
	for _, f := range sw.Families {
		if f.Base.Number == 7 {
			kept = append(kept, f)
		}
	}
	sw.Families = kept
	return sw
}

// singleProcess evaluates src in one process and returns the NDJSON run
// lines plus the aggregate — the reference every distributed run must match
// byte for byte.
func singleProcess(t *testing.T, src scenarios.JobSource) ([]byte, AggregateReport) {
	t.Helper()
	engine := scenarios.NewEngine(scenarios.WithRetention(scenarios.SummaryOnly))
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	var acc scenarios.Accumulator
	err := engine.Stream(context.Background(), src, scenarios.Tee(&acc, scenarios.SinkFunc(
		func(sr scenarios.StreamResult) error {
			return enc.Encode(NewRunReport(sr))
		})))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), NewAggregateReport(&acc)
}

// distributed runs src through a coordinator and returns the merged NDJSON
// run lines plus the aggregate.
func distributed(t *testing.T, opts Options, src scenarios.JobSource) ([]byte, AggregateReport) {
	t.Helper()
	coord, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	acc, err := coord.Run(context.Background(), src, scenarios.SinkFunc(
		func(sr scenarios.StreamResult) error {
			return enc.Encode(NewRunReport(sr))
		}))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), acc.Report()
}

// requireIdentical asserts a distributed output equals the single-process
// reference exactly.
func requireIdentical(t *testing.T, wantStream []byte, wantAgg AggregateReport, gotStream []byte, gotAgg AggregateReport) {
	t.Helper()
	if !bytes.Equal(wantStream, gotStream) {
		t.Errorf("merged stream differs from single-process stream:\n--- single ---\n%s--- merged ---\n%s", wantStream, gotStream)
	}
	// AggregateReport embeds a slice, so compare the marshalled trailers —
	// byte equality is the contract anyway.
	wantLine, _ := json.Marshal(wantAgg)
	gotLine, _ := json.Marshal(gotAgg)
	if !bytes.Equal(wantLine, gotLine) {
		t.Errorf("merged aggregate %s != single-process aggregate %s", gotLine, wantLine)
	}
}

func TestCoordinatorMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice")
	}
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	gotStream, gotAgg := distributed(t, Options{
		Workers:   3,
		Transport: &LocalTransport{Source: sw.Source},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}

// TestCoordinatorKillRequeue kills one worker mid-shard and checks the shard
// is re-queued, the replacement is seeded with the proved prefix, and the
// merged output is still byte-identical to single-process.
func TestCoordinatorKillRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice, once with a re-queue")
	}
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())

	// Pick the shard owning the most variants, so the kill happens with work
	// genuinely outstanding.
	const n = 3
	counts := make([]int, n)
	src := sw.Source()
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		counts[j.Shard(n)]++
	}
	victim := 0
	for s, c := range counts {
		if c > counts[victim] {
			victim = s
		}
	}
	if counts[victim] < 2 {
		t.Fatalf("victim shard %d owns %d variants; the kill would be a no-op", victim, counts[victim])
	}

	// Hooks run on the coordinator's goroutine, so no locking is needed.
	workers := make(map[int]Worker)
	killed := false
	seeded := -1
	gotStream, gotAgg := distributed(t, Options{
		Workers:    n,
		MaxRetries: 2,
		Transport: &seedSpyTransport{
			inner: &LocalTransport{Source: sw.Source},
			onSeed: func(shard, seedLen int) {
				if shard == victim {
					seeded = seedLen
				}
			},
		},
		Hooks: Hooks{
			OnSpawn: func(shard, attempt int, w Worker) { workers[shard] = w },
			OnResult: func(shard, attempt int, key string) {
				if shard == victim && attempt == 0 && !killed {
					killed = true
					workers[victim].Kill()
				}
			},
		},
	}, sw.Source())

	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
	if !killed {
		t.Fatal("the victim worker was never killed; the test exercised nothing")
	}
	if seeded < 0 {
		t.Error("the re-queued victim was never spawned with a seed")
	} else if seeded == 0 {
		t.Error("the replacement worker was seeded with nothing; proved results should carry over")
	}
}

// seedSpyTransport reports the seed size of each respawn.
type seedSpyTransport struct {
	inner  Transport
	onSeed func(shard, seedLen int)
}

func (t *seedSpyTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if len(spec.Seed) > 0 && t.onSeed != nil {
		t.onSeed(spec.Index, len(spec.Seed))
	}
	return t.inner.Start(ctx, spec)
}

// TestCoordinatorDedupOverlappingWorkers runs every worker over the FULL
// source (a worst-case misbehaving transport: n-fold duplicate delivery) and
// checks deduplication still yields the exact single-process output.
func TestCoordinatorDedupOverlappingWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family four times")
	}
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	gotStream, gotAgg := distributed(t, Options{
		Workers:   3,
		Transport: &overlapTransport{source: sw.Source},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}

// overlapTransport ignores the shard spec: every worker evaluates the whole
// source, so every variant arrives once per worker.
type overlapTransport struct {
	source func() scenarios.JobSource
}

func (t *overlapTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	full := &LocalTransport{Source: t.source}
	return full.Start(ctx, ShardSpec{Index: 0, Total: 1, Seed: spec.Seed})
}

// TestCoordinatorStallRequeue gives shard 0 a first worker that hangs
// silently; the stall timeout must kill it and the replacement must finish
// the sweep with output identical to single-process.
func TestCoordinatorStallRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice, once with a stall")
	}
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	// The timeout must outlast one honest variant simulation on a loaded
	// 1-CPU machine, or the healthy replacement gets killed too.
	ft := &flakyTransport{inner: &LocalTransport{Source: sw.Source}, hangFirst: 0}
	gotStream, gotAgg := distributed(t, Options{
		Workers:      3,
		MaxRetries:   2,
		StallTimeout: 2 * time.Second,
		Transport:    ft,
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
	if !ft.hung {
		t.Fatal("the hanging worker was never started; the test exercised nothing")
	}
}

// flakyTransport hands out one hanging worker for shard hangFirst's first
// attempt, then delegates.
type flakyTransport struct {
	inner     Transport
	hangFirst int

	mu    sync.Mutex
	calls map[int]int
	hung  bool
}

func (t *flakyTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	t.mu.Lock()
	if t.calls == nil {
		t.calls = make(map[int]int)
	}
	n := t.calls[spec.Index]
	t.calls[spec.Index]++
	if spec.Index == t.hangFirst && n == 0 {
		t.hung = true
		t.mu.Unlock()
		return newHangWorker(), nil
	}
	t.mu.Unlock()
	return t.inner.Start(ctx, spec)
}

// hangWorker emits nothing and never exits until killed.
type hangWorker struct {
	pr   *io.PipeReader
	pw   *io.PipeWriter
	done chan struct{}
	once sync.Once
}

func newHangWorker() *hangWorker {
	pr, pw := io.Pipe()
	return &hangWorker{pr: pr, pw: pw, done: make(chan struct{})}
}

func (w *hangWorker) Output() io.Reader { return w.pr }

func (w *hangWorker) Wait() error {
	<-w.done
	return errors.New("hung worker killed")
}

func (w *hangWorker) Kill() error {
	w.once.Do(func() {
		w.pw.CloseWithError(errors.New("killed"))
		close(w.done)
	})
	return nil
}

// TestCoordinatorMaxRetriesExceeded fails shard 0 on every attempt and
// checks the run reports the exhausted shard instead of hanging.
func TestCoordinatorMaxRetriesExceeded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two shards of the scenario-7 family")
	}
	sw := testSweep(t)
	coord, err := New(Options{
		Workers:    3,
		MaxRetries: 1,
		Transport:  &brokenShardTransport{inner: &LocalTransport{Source: sw.Source}, broken: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err == nil {
		t.Fatal("a permanently failing shard must fail the run")
	}
	if !strings.Contains(err.Error(), "failed after 2 attempt(s)") {
		t.Errorf("error should report the exhausted attempts, got: %v", err)
	}
}

// brokenShardTransport hands the broken shard a worker that exits cleanly
// without producing anything — the subtlest failure, since there is no error
// to propagate, only missing work.
type brokenShardTransport struct {
	inner  Transport
	broken int
}

func (t *brokenShardTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if spec.Index == t.broken {
		return emptyWorker{}, nil
	}
	return t.inner.Start(ctx, spec)
}

type emptyWorker struct{}

func (emptyWorker) Output() io.Reader { return strings.NewReader("") }
func (emptyWorker) Wait() error       { return nil }
func (emptyWorker) Kill() error       { return nil }

// TestCoordinatorSinkError propagates a sink failure out of Run.
func TestCoordinatorSinkError(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a sweep before the sink fails")
	}
	sw := testSweep(t)
	coord, err := New(Options{Workers: 2, Transport: &LocalTransport{Source: sw.Source}})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink exploded")
	_, err = coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return boom }))
	if err == nil || !errors.Is(err, boom) {
		t.Errorf("Run should surface the sink error, got: %v", err)
	}
}

// TestCoordinatorCancellation cancels a run blocked on a silent worker.
func TestCoordinatorCancellation(t *testing.T) {
	sw := testSweep(t)
	coord, err := New(Options{
		Workers:   1,
		Transport: &flakyTransport{inner: &LocalTransport{Source: sw.Source}, hangFirst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = coord.Run(ctx, sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run should return the context error, got: %v", err)
	}
}

// TestCoordinatorRejectsDuplicateKeys enforces the shard key contract at the
// coordinator boundary.
func TestCoordinatorRejectsDuplicateKeys(t *testing.T) {
	sc, _ := scenarios.ScenarioByNumber(7)
	jobs := []scenarios.Job{{Scenario: sc}, {Scenario: sc}}
	coord, err := New(Options{Workers: 2, Transport: &LocalTransport{Source: func() scenarios.JobSource {
		return scenarios.SliceSource(jobs)
	}}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), scenarios.SliceSource(jobs), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err == nil || !strings.Contains(err.Error(), "duplicate variant") {
		t.Errorf("duplicate keys must be rejected, got: %v", err)
	}
}

// TestNewValidation pins Option validation.
func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("a Coordinator without a Transport must be rejected")
	}
	c, err := New(Options{Workers: -4, Transport: &LocalTransport{}})
	if err != nil {
		t.Fatal(err)
	}
	if c.opts.Workers != 1 {
		t.Errorf("non-positive Workers should default to 1, got %d", c.opts.Workers)
	}
}

// TestLocalTransportNeedsSource pins the LocalTransport precondition.
func TestLocalTransportNeedsSource(t *testing.T) {
	if _, err := (&LocalTransport{}).Start(context.Background(), ShardSpec{Total: 1}); err == nil {
		t.Error("LocalTransport without a Source must be rejected")
	}
}
