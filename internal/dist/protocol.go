package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/monitor"
	"repro/internal/scenarios"
)

// The worker protocol is NDJSON over the worker's stdout, and it is exactly
// the streaming output of `cmd/scenarios -stream`: one RunReport line per
// completed variant in the worker's shard order, then one AggregateReport
// trailer covering the worker's own runs.  The coordinator consumes run
// lines and ignores trailers (a re-queued shard would double-count them);
// everything in the protocol round-trips through encoding/json
// byte-identically, so parse → re-emit is diff-stable.

// RunReport is the machine-readable record of one monitored run — the
// per-run NDJSON line shared by cmd/scenarios, the distributed workers and
// the coordinator's merged re-emission.
type RunReport struct {
	Name            string  `json:"name"`
	Scenario        int     `json:"scenario"`
	InitialSpeed    float64 `json:"initial_speed"`
	ObjectDistance  float64 `json:"object_distance"`
	ObjectSpeed     float64 `json:"object_speed"`
	Gear            string  `json:"gear"`
	Corrected       bool    `json:"corrected"`
	Steps           int     `json:"steps"`
	Collision       bool    `json:"collision"`
	TerminatedEarly bool    `json:"terminated_early"`
	Hits            int     `json:"hits"`
	FalseNegatives  int     `json:"false_negatives"`
	FalsePositives  int     `json:"false_positives"`
}

// NewRunReport builds the report for one completed run.
func NewRunReport(sr scenarios.StreamResult) RunReport {
	r := sr.Result
	return RunReport{
		Name:            r.Scenario.Name,
		Scenario:        r.Scenario.Number,
		InitialSpeed:    r.Scenario.InitialSpeed,
		ObjectDistance:  r.Scenario.ObjectDistance,
		ObjectSpeed:     r.Scenario.ObjectSpeed,
		Gear:            r.Scenario.Gear,
		Corrected:       sr.Job.Options.CorrectDefects,
		Steps:           r.Steps,
		Collision:       r.Collision,
		TerminatedEarly: r.TerminatedEarly(),
		Hits:            r.Summary.Hits,
		FalseNegatives:  r.Summary.FalseNegatives,
		FalsePositives:  r.Summary.FalsePositives,
	}
}

// Result rebuilds the summary-only scenarios.Result this report describes,
// using the coordinator's own enumeration of the job for the scenario
// configuration (the report carries only the run outcome).  The rebuilt
// result is indistinguishable from the one the worker held: NewRunReport of
// the rebuilt StreamResult re-marshals byte-identically.
func (r RunReport) Result(job scenarios.Job) scenarios.Result {
	sc := job.Scenario
	if sc.Duration <= 0 {
		sc.Duration = scenarios.DefaultDuration
	}
	return scenarios.Result{
		Scenario:  sc,
		Steps:     r.Steps,
		Collision: r.Collision,
		Summary: monitor.Summary{
			Hits:           r.Hits,
			FalseNegatives: r.FalseNegatives,
			FalsePositives: r.FalsePositives,
		},
	}
}

// AggregateReport is the batch/stream trailer: the cross-variant aggregate of
// one evaluation.  In NDJSON streams it is the final line, without per-run
// Results; the batch -json document embeds them.
type AggregateReport struct {
	Runs              int             `json:"runs"`
	Collisions        int             `json:"collisions"`
	EarlyTerminations int             `json:"early_terminations"`
	Aggregate         monitor.Summary `json:"aggregate"`
	FalseNegativeRate float64         `json:"false_negative_rate"`
	FalsePositiveRate float64         `json:"false_positive_rate"`
	// Partial marks an aggregate that covers only part of the sweep: a
	// coordinator running with AllowPartial retired at least one shard.
	// Both fields are omitted when the sweep is complete, so a complete
	// distributed aggregate stays byte-identical to the single-process one.
	Partial bool `json:"partial,omitempty"`
	// Completion maps shard index (as a decimal string, for JSON) to that
	// shard's delivery record; the retired shards are exactly those with
	// Complete == false.
	Completion map[string]ShardCompletion `json:"completion,omitempty"`
	Results    []RunReport                `json:"results,omitempty"`
}

// NewAggregateReport snapshots an accumulator as the aggregate trailer.
func NewAggregateReport(acc *scenarios.Accumulator) AggregateReport {
	sum := acc.Summary()
	return AggregateReport{
		Runs:              acc.Runs(),
		Collisions:        acc.Collisions(),
		EarlyTerminations: acc.EarlyTerminations(),
		Aggregate:         sum,
		FalseNegativeRate: sum.FalseNegativeRate(),
		FalsePositiveRate: sum.FalsePositiveRate(),
	}
}

// ParseResultLine classifies one NDJSON line of the worker protocol.  It
// returns the run report with ok=true for a per-run line, ok=false for an
// aggregate trailer or blank line, and an error for anything else — a
// corrupted stream should surface as a worker failure, not be silently
// skipped.
func ParseResultLine(line []byte) (RunReport, bool, error) {
	if len(strings.TrimSpace(string(line))) == 0 {
		return RunReport{}, false, nil
	}
	var probe struct {
		Name *string `json:"name"`
		Runs *int    `json:"runs"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return RunReport{}, false, fmt.Errorf("dist: malformed result line %q: %w", truncateForError(line), err)
	}
	switch {
	case probe.Name != nil:
		var rep RunReport
		if err := json.Unmarshal(line, &rep); err != nil {
			return RunReport{}, false, fmt.Errorf("dist: malformed run report %q: %w", truncateForError(line), err)
		}
		return rep, true, nil
	case probe.Runs != nil:
		return RunReport{}, false, nil // aggregate trailer
	default:
		return RunReport{}, false, fmt.Errorf("dist: unrecognized result line %q", truncateForError(line))
	}
}

// truncateForError bounds a protocol line quoted in an error message.
func truncateForError(line []byte) string {
	const max = 120
	if len(line) <= max {
		return string(line)
	}
	return string(line[:max]) + "..."
}

// ProvedResult is one memoized variant on the wire: the run options together
// with the summary-only result, which between them carry the full variant
// key (scenario name, effective duration, options label).  Seed files —
// `-seed-results` on cmd/scenarios, ShardSpec.Seed on a Transport — are
// NDJSON streams of ProvedResult lines; a re-queued worker loads them into
// its engine's result cache so already-proved variants replay without
// simulation.
type ProvedResult struct {
	Options scenarios.Options `json:"options"`
	Result  scenarios.Result  `json:"result"`
}

// Job reassembles the job this proved result answers, the handle under which
// it is seeded into an Engine's result cache.
func (p ProvedResult) Job() scenarios.Job {
	return scenarios.Job{Scenario: p.Result.Scenario, Options: p.Options}
}

// WriteProved writes proved results as NDJSON, one ProvedResult per line.
func WriteProved(w io.Writer, proved []ProvedResult) error {
	enc := json.NewEncoder(w)
	for i, p := range proved {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("dist: encoding proved result %d: %w", i, err)
		}
	}
	return nil
}

// ReadProved reads a ProvedResult NDJSON stream, tolerating blank lines.
func ReadProved(r io.Reader) ([]ProvedResult, error) {
	var proved []ProvedResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var p ProvedResult
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("dist: proved result line %d: %w", len(proved)+1, err)
		}
		proved = append(proved, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: reading proved results: %w", err)
	}
	return proved, nil
}

// maxLineBytes bounds one protocol line.  Run reports are a few hundred
// bytes and proved results a few kilobytes; a megabyte of headroom means a
// malformed stream fails with a parse error rather than a scanner overflow.
const maxLineBytes = 1 << 20
