//go:build race

package dist

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation slows simulation by roughly an order of
// magnitude — timing-sensitive budgets scale themselves up when it is on.
const raceEnabled = true
