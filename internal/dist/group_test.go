package dist

// Distributed differential for dynamics-grouped execution: LocalTransport
// workers build their engines with the default configuration, so grouping is
// active inside every shard.  Sharding assigns the tolerance variants of one
// family to different shards (Job.Key covers the options label), which
// splits many dynamics groups across workers — exactly the partial-group
// shapes a single process never produces — and the merged output must still
// be byte-identical to the single-process reference.

import (
	"testing"
	"time"

	"repro/internal/scenarios"
)

// groupSweep is the tolerance sweep with trimmed durations: the preset whose
// consecutive variants actually share a DynamicsKey, so both the
// single-process reference and the per-shard engines exercise grouped
// execution for real.
func groupSweep(t *testing.T) scenarios.Sweep {
	t.Helper()
	sw, err := scenarios.SweepBySize("tolerance")
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 1 * time.Second
	}
	return sw
}

func TestCoordinatorGroupedToleranceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 30-variant tolerance sweep twice")
	}
	sw := groupSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	gotStream, gotAgg := distributed(t, Options{
		Workers:   3,
		Transport: &LocalTransport{Source: sw.Source},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}
