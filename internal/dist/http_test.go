package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// workerServer mounts the shard handler for the scenario-7 test sweep on a
// loopback HTTP server.
func workerServer(t *testing.T) *httptest.Server {
	t.Helper()
	sw := testSweep(t)
	srv := httptest.NewServer(&WorkerServer{Source: sw.Source})
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPTransportMatchesSingleProcess is the loopback acceptance test for
// the HTTP transport: three shards POSTed to one worker daemon, merged output
// byte-identical to a single process — with zero coordinator changes.
func TestHTTPTransportMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice over loopback HTTP")
	}
	sw := testSweep(t)
	srv := workerServer(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	gotStream, gotAgg := distributed(t, Options{
		Workers:   3,
		Transport: &HTTPTransport{Hosts: []string{srv.URL}},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}

// stallAfterWriter lets n writes through, then blocks every later write until
// the request is cancelled.  It turns "kill an HTTP worker mid-stream" into a
// deterministic event: the victim's first line is on the wire, the rest can
// only be freed by the coordinator's Kill cancelling the request.
type stallAfterWriter struct {
	http.ResponseWriter
	n    int
	done <-chan struct{}

	writes int
}

func (w *stallAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		<-w.done
		return 0, errors.New("request cancelled")
	}
	return w.ResponseWriter.Write(p)
}

func (w *stallAfterWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestHTTPTransportKillRequeue kills one HTTP worker mid-stream (request
// cancellation, the HTTP analogue of SIGKILL) and checks the shard is
// re-queued, the replacement is seeded with the proved prefix, and the merged
// output stays byte-identical.  The server stalls the victim shard's first
// attempt after one line, so the kill is guaranteed to land with work
// genuinely outstanding.
func TestHTTPTransportKillRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice over loopback HTTP, once with a kill")
	}
	sw := testSweep(t)
	const n = 3
	counts := shardCounts(t, sw.Source(), n)
	victim := 0
	for s, c := range counts {
		if c > counts[victim] {
			victim = s
		}
	}

	ws := &WorkerServer{Source: sw.Source}
	var mu sync.Mutex
	attempts := make(map[int]int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw, _ := io.ReadAll(r.Body)
		var spec ShardSpec
		json.Unmarshal(raw, &spec)
		r.Body = io.NopCloser(bytes.NewReader(raw))
		mu.Lock()
		attempt := attempts[spec.Index]
		attempts[spec.Index]++
		mu.Unlock()
		if spec.Index == victim && attempt == 0 {
			ws.ServeHTTP(&stallAfterWriter{ResponseWriter: w, n: 1, done: r.Context().Done()}, r)
			return
		}
		ws.ServeHTTP(w, r)
	}))
	defer srv.Close()
	wantStream, wantAgg := singleProcess(t, sw.Source())

	workers := make(map[int]Worker)
	killed := false
	seeded := false
	respawned := false
	gotStream, gotAgg := distributed(t, Options{
		Workers:     n,
		MaxAttempts: 3,
		Transport: &seedSpyTransport{
			inner:  &HTTPTransport{Hosts: []string{srv.URL}},
			onSeed: func(shard, seedLen int) { seeded = seeded || (shard == victim && seedLen > 0) },
		},
		Hooks: Hooks{
			OnSpawn: func(shard, attempt int, w Worker) {
				workers[shard] = w
				respawned = respawned || (shard == victim && attempt > 0)
			},
			OnResult: func(shard, attempt int, key string) {
				if shard == victim && attempt == 0 && !killed {
					killed = true
					workers[victim].Kill()
				}
			},
		},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
	if !killed {
		t.Fatal("the victim worker was never killed; the test exercised nothing")
	}
	if !respawned {
		t.Error("the killed shard was never re-queued")
	}
	if !seeded {
		t.Error("the re-queued worker was never seeded with the proved prefix")
	}
}

// TestHTTPTransportStartErrors pins the spawn-failure paths: no hosts, an
// unreachable host, and a server that rejects the request before streaming.
func TestHTTPTransportStartErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := (&HTTPTransport{}).Start(ctx, ShardSpec{Total: 1}); err == nil {
		t.Error("HTTPTransport without hosts must refuse to start")
	}
	// An unreachable loopback port: connection refused surfaces as a spawn
	// error, which the coordinator charges against the attempt budget.
	unreachable := &HTTPTransport{Hosts: []string{"127.0.0.1:1"}}
	if _, err := unreachable.Start(ctx, ShardSpec{Total: 1}); err == nil {
		t.Error("an unreachable host must fail the spawn")
	}
	// A handler that rejects the shard: the non-2xx status (and its body)
	// must come back as the spawn error.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker is misconfigured", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	_, err := (&HTTPTransport{Hosts: []string{srv.URL}}).Start(ctx, ShardSpec{Total: 1})
	if err == nil || !strings.Contains(err.Error(), "worker is misconfigured") {
		t.Errorf("a rejecting worker should surface its message, got: %v", err)
	}
}

// TestWorkerServerRejectsBadRequests pins the daemon-side validation.
func TestWorkerServerRejectsBadRequests(t *testing.T) {
	srv := workerServer(t)

	if resp, err := http.Get(srv.URL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET should be rejected with 405, got %s", resp.Status)
		}
	}
	for _, body := range []string{"not json at all", `{"index":5,"total":3}`, `{"index":-1,"total":2}`, `{"index":0,"total":0}`} {
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q should be rejected with 400, got %s", body, resp.Status)
		}
	}
}

// TestWorkerServerStreamsShard drives one shard request by hand and checks
// the response is the worker protocol: the shard's run lines, then one
// aggregate trailer, and a clean (empty) error trailer.
func TestWorkerServerStreamsShard(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates one shard of the scenario-7 family")
	}
	srv := workerServer(t)
	body, _ := json.Marshal(ShardSpec{Index: 0, Total: 3})
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard request failed: %s", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if msg := resp.Trailer.Get(workerErrTrailer); msg != "" {
		t.Errorf("clean shard evaluation set the error trailer: %q", msg)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("expected run lines plus an aggregate trailer, got %d line(s)", len(lines))
	}
	runs := 0
	for i, line := range lines {
		rep, ok, err := ParseResultLine(line)
		if err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
		if ok {
			runs++
			if rep.Name == "" {
				t.Errorf("line %d: run report without a name", i)
			}
		} else if i != len(lines)-1 {
			t.Errorf("aggregate trailer at line %d, not last", i)
		}
	}
	var agg AggregateReport
	if err := json.Unmarshal(lines[len(lines)-1], &agg); err != nil {
		t.Fatalf("final line is not an aggregate trailer: %v", err)
	}
	if agg.Runs != runs {
		t.Errorf("trailer covers %d runs, stream carried %d", agg.Runs, runs)
	}
}

// TestJoinHostPath pins the URL assembly rules.
func TestJoinHostPath(t *testing.T) {
	cases := map[[2]string]string{
		{"127.0.0.1:8571", "/shard"}:       "http://127.0.0.1:8571/shard",
		{"http://worker:80", "/shard"}:     "http://worker:80/shard",
		{"http://worker:80/", "/shard"}:    "http://worker:80/shard",
		{"https://worker.example", "/run"}: "https://worker.example/run",
	}
	for in, want := range cases {
		if got := joinHostPath(in[0], in[1]); got != want {
			t.Errorf("joinHostPath(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}
