package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/scenarios"
)

// buildScenariosBinary compiles cmd/scenarios into a temp dir, so the chaos
// test exercises the real worker binary, not an in-process stand-in.
func buildScenariosBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "scenarios")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/scenarios")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building scenarios worker: %v\n%s", err, out)
	}
	return bin
}

// TestChaosSIGKILLWorker is the end-to-end fault-tolerance test: three real
// worker processes over the default sweep, one SIGKILLed mid-shard, and the
// merged NDJSON stream plus final aggregate must still be byte-identical to
// the single-process run.  The kill is a true SIGKILL delivered to a child
// process — no graceful flush, a partial line on the wire is possible — so
// this covers the whole re-queue path: death detection, seeding the
// replacement with the proved prefix, and deduplicating re-deliveries.
func TestChaosSIGKILLWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 120-variant default sweep twice across processes")
	}
	bin := buildScenariosBinary(t)

	// The acceptance-scale run — the 1296-variant huge sweep — takes minutes
	// on a small machine, so the default is the 120-variant grid; set
	// REPRO_CHAOS_SWEEP=huge to run the full criterion.
	size := "default"
	if s := os.Getenv("REPRO_CHAOS_SWEEP"); s != "" {
		size = s
	}

	// Single-process reference, through the same binary the workers run.
	single := exec.Command(bin, "-sweep", "-sweep-size", size, "-stream")
	var want bytes.Buffer
	single.Stdout = &want
	if err := single.Run(); err != nil {
		t.Fatalf("single-process sweep: %v", err)
	}

	sw, err := scenarios.SweepBySize(size)
	if err != nil {
		t.Fatal(err)
	}

	const victim = 0
	workers := make(map[int]Worker)
	victimResults := 0
	killed := false
	coord, err := New(Options{
		Workers:    3,
		MaxRetries: 2,
		Transport:  &ExecTransport{Argv: []string{bin, "-sweep", "-sweep-size", size, "-stream"}},
		Hooks: Hooks{
			OnSpawn: func(shard, attempt int, w Worker) { workers[shard] = w },
			OnResult: func(shard, attempt int, key string) {
				if shard != victim || attempt != 0 || killed {
					return
				}
				victimResults++
				// Kill after a handful of results: late enough that the
				// replacement has a proved prefix to seed, early enough that
				// real work remains.
				if victimResults == 5 {
					killed = true
					if err := workers[victim].Kill(); err != nil {
						t.Errorf("SIGKILL: %v", err)
					}
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	enc := json.NewEncoder(&got)
	acc, err := coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(sr scenarios.StreamResult) error {
			return enc.Encode(NewRunReport(sr))
		}))
	if err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}
	if err := enc.Encode(acc.Report()); err != nil {
		t.Fatal(err)
	}

	if !killed {
		t.Fatal("no worker was killed; the chaos never happened")
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("distributed output with a SIGKILLed worker differs from single-process output:\n--- single (%d bytes) ---\n%.2000s\n--- merged (%d bytes) ---\n%.2000s",
			want.Len(), want.String(), got.Len(), got.String())
	}
}
