package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/scenarios"
)

// Hooks are optional observation points, used by tests to inject failures
// (killing a worker after its k-th result) and by front-ends for progress.
// All may be nil; all are called from the coordinator's main loop.
type Hooks struct {
	// OnSpawn fires after a worker for the given shard and attempt (0-based)
	// has started.
	OnSpawn func(shard, attempt int, w Worker)
	// OnResult fires for every run line a worker delivers, before
	// deduplication, with the variant key it carries.
	OnResult func(shard, attempt int, key string)
	// OnRetire fires when AllowPartial retires a shard that exhausted its
	// attempt budget, with the terminal error it died on.
	OnRetire func(shard int, err error)
}

// Options configures a Coordinator.
type Options struct {
	// Workers is the shard count — one worker per shard.  Values below 1
	// default to 1.
	Workers int
	// Transport spawns the workers.  Required.
	Transport Transport
	// StallTimeout kills a worker that has produced no output line for this
	// long, triggering a re-queue.  Zero disables stall detection (process
	// exit still triggers re-queue).
	StallTimeout time.Duration
	// MaxAttempts bounds the total workers (first spawn plus replacements)
	// spent on one shard; a shard that exhausts the budget fails the run
	// with an error matching ErrShardFailed — or, under AllowPartial, is
	// retired and reported in the Outcome's completion map.  Zero derives
	// the budget from the legacy MaxRetries knob (MaxRetries+1 attempts).
	MaxAttempts int
	// MaxRetries is the legacy budget knob: replacement workers per shard.
	// Superseded by MaxAttempts; consulted only when MaxAttempts is zero.
	MaxRetries int
	// RetryBackoff is the base delay before re-queuing a failed shard:
	// replacement k waits RetryBackoff<<(k-1), capped at RetryBackoffMax,
	// scaled by a jitter factor in [0.5,1.5) drawn from the seeded RNG —
	// so a flapping transport is probed at an exponentially decaying rate
	// instead of hammered in a tight loop.  Zero re-queues immediately
	// (the pre-backoff behavior).
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff; zero defaults to
	// 16×RetryBackoff.
	RetryBackoffMax time.Duration
	// Seed drives the backoff jitter RNG.  The same seed and failure
	// history reproduce the same delays, keeping chaos runs replayable.
	Seed int64
	// AllowPartial degrades gracefully instead of failing the sweep: a
	// shard that exhausts its attempt budget is retired, its undelivered
	// variants are released as holes in the ordered stream, and Run returns
	// a Partial Outcome whose Shards records exactly what was lost.  The
	// byte-identical-to-one-process contract still holds whenever every
	// shard completes.
	AllowPartial bool
	// Hooks observes spawns, results and retirements.
	Hooks Hooks
}

// maxAttempts resolves the effective per-shard attempt budget.
func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	if o.MaxRetries > 0 {
		return o.MaxRetries + 1
	}
	return 1
}

// ErrShardFailed is the sentinel matched (via errors.Is) by the typed error
// a shard raises when it exhausts its attempt budget with work outstanding.
var ErrShardFailed = errors.New("dist: shard exhausted its attempt budget")

// ShardError reports one shard's exhausted attempt budget: which shard, how
// many attempts were spent, how many variants were left undelivered, and the
// terminal cause of the last attempt.  errors.Is(err, ErrShardFailed) holds.
type ShardError struct {
	Shard      int   // failed shard index
	Total      int   // shard count of the sweep
	Attempts   int   // attempts consumed (first spawn + replacements)
	Unfinished int   // variants the shard never delivered
	Cause      error // terminal error of the last attempt
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %d/%d failed after %d attempt(s), %d variant(s) unfinished: %v",
		e.Shard, e.Total, e.Attempts, e.Unfinished, e.Cause)
}

// Unwrap exposes the terminal cause.
func (e *ShardError) Unwrap() error { return e.Cause }

// Is matches the ErrShardFailed sentinel.
func (e *ShardError) Is(target error) bool { return target == ErrShardFailed }

// ShardCompletion is one shard's provenance record in a (possibly partial)
// distributed sweep: how much of the shard was delivered, how many workers
// it consumed, and — for a retired shard — the terminal error.
type ShardCompletion struct {
	Done     int    `json:"done"`            // variants delivered
	Total    int    `json:"total"`           // variants owned by the shard
	Complete bool   `json:"complete"`        // Done == Total
	Attempts int    `json:"attempts"`        // workers spawned for the shard
	Error    string `json:"error,omitempty"` // terminal error of a retired shard
}

// Outcome is what a coordinator Run produces: the merged Accumulator (the
// embedding keeps every existing acc.Runs()/acc.Summary() call site working)
// plus per-shard completion provenance.  Partial is false exactly when every
// variant was delivered, in which case Report() marshals byte-identically to
// the single-process aggregate trailer.
type Outcome struct {
	*scenarios.Accumulator
	// Partial reports that at least one shard was retired under
	// AllowPartial and the aggregate covers only the delivered variants.
	Partial bool
	// Shards holds one completion record per shard, indexed by shard.
	Shards []ShardCompletion
}

// Report renders the outcome as the aggregate trailer.  A complete outcome
// yields exactly NewAggregateReport(acc) — no partial markers — preserving
// the byte-identity contract; a partial one is flagged and carries the full
// per-shard completion map.
func (o *Outcome) Report() AggregateReport {
	rep := NewAggregateReport(o.Accumulator)
	if o.Partial {
		rep.Partial = true
		rep.Completion = make(map[string]ShardCompletion, len(o.Shards))
		for shard, c := range o.Shards {
			rep.Completion[strconv.Itoa(shard)] = c
		}
	}
	return rep
}

// Coordinator runs a JobSource across sharded workers and merges their
// streams back into the single-process contract: the sink sees every variant
// exactly once, in global source order, and the returned Accumulator equals
// the one a single process would have produced.
type Coordinator struct {
	opts Options
}

// New validates options into a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if opts.Transport == nil {
		return nil, errors.New("dist: Coordinator needs a Transport")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	if opts.RetryBackoff > 0 && opts.RetryBackoffMax <= 0 {
		opts.RetryBackoffMax = 16 * opts.RetryBackoff
	}
	return &Coordinator{opts: opts}, nil
}

// jobRef is the coordinator's record of one enumerated variant.
type jobRef struct {
	index int
	job   scenarios.Job
	shard int
}

// arrival is one parsed run line.
type arrival struct {
	shard, attempt int
	report         RunReport
}

// exitEvent is one worker termination, after its output is fully drained.
type exitEvent struct {
	shard, attempt int
	err            error
}

// Run executes src across the configured workers and streams the merged
// results to sink in global source order.  It returns the merged Outcome; on
// failure the sink has seen a prefix of the stream and the error reports the
// first unrecoverable fault (a shard exceeding its attempt budget without
// AllowPartial, a sink error, or cancellation).  Under AllowPartial an
// exhausted shard is retired instead: Run succeeds with Outcome.Partial set
// and the completion map naming the dead shard.
func (c *Coordinator) Run(ctx context.Context, src scenarios.JobSource, sink scenarios.ResultSink) (*Outcome, error) {
	n := c.opts.Workers

	// Enumerate the source once to know, independently of any worker, what
	// "complete" means: every variant, its global index, and its owner shard.
	// The shard key contract requires unique keys; enforce it here so a
	// violating source fails loudly instead of silently losing variants to
	// deduplication.
	var jobs []jobRef
	byName := make(map[string]jobRef)
	seenKeys := make(map[string]struct{})
	shardTotal := make([]int, n)
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		key := job.Key()
		if _, dup := seenKeys[key]; dup {
			return nil, fmt.Errorf("dist: duplicate variant key %q in source", key)
		}
		seenKeys[key] = struct{}{}
		name := job.Scenario.Name
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("dist: duplicate variant name %q in source", name)
		}
		ref := jobRef{index: len(jobs), job: job, shard: job.Shard(n)}
		byName[name] = ref
		jobs = append(jobs, ref)
		shardTotal[ref.shard]++
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	shardRemaining := make([]int, n)
	copy(shardRemaining, shardTotal)

	st := &runState{
		c:              c,
		ctx:            ctx,
		sink:           sink,
		arrivals:       make(chan arrival, 64),
		exits:          make(chan exitEvent, n),
		respawns:       make(chan int, n),
		refs:           jobs,
		byName:         byName,
		total:          n,
		maxAttempts:    c.opts.maxAttempts(),
		shardTotal:     shardTotal,
		shardRemaining: shardRemaining,
		remaining:      len(jobs),
		attempt:        make([]int, n),
		spawned:        make([]int, n),
		workers:        make([]Worker, n),
		lastSeen:       make([]time.Time, n),
		dead:           make([]bool, n),
		failure:        make([]error, n),
		poisoned:       make([]error, n),
		delivered:      make(map[string]struct{}),
		pending:        make(map[int]scenarios.StreamResult),
		accs:           make([]*scenarios.Accumulator, n),
		rng:            rand.New(rand.NewSource(c.opts.Seed)),
	}
	for i := range st.accs {
		st.accs[i] = &scenarios.Accumulator{}
	}
	defer st.reapAll()

	for shard := 0; shard < n; shard++ {
		if err := st.spawn(shard); err != nil {
			return nil, err
		}
	}

	var stall <-chan time.Time
	if c.opts.StallTimeout > 0 {
		t := time.NewTicker(c.opts.StallTimeout / 2)
		defer t.Stop()
		stall = t.C
	}

	for st.remaining > 0 {
		select {
		case a := <-st.arrivals:
			if err := st.handleArrival(a); err != nil {
				return nil, err
			}
		case e := <-st.exits:
			// A worker's exit is sent only after its last result was placed in
			// the arrivals channel, but select order between the two channels is
			// random — so a fast worker (an HTTP response arriving in one burst,
			// a fully-seeded replay) can be reaped with its results still
			// buffered.  Drain them first, or finished work would be charged as
			// a failed attempt.
			if err := st.drainArrivals(); err != nil {
				return nil, err
			}
			if err := st.handleExit(e); err != nil {
				return nil, err
			}
		case shard := <-st.respawns:
			if err := st.spawn(shard); err != nil {
				return nil, err
			}
		case now := <-stall:
			st.killStalled(now)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Merge the per-shard partials in shard order.  Merge order does not
	// affect the aggregate (TestAccumulatorMergeEquivalence); a fixed order
	// just keeps the walk deterministic.
	merged := &scenarios.Accumulator{}
	for _, acc := range st.accs {
		merged.Merge(acc)
	}
	return st.outcome(merged), nil
}

// runState is the bookkeeping of one Run call, owned by the main loop.
type runState struct {
	c        *Coordinator
	ctx      context.Context
	sink     scenarios.ResultSink
	arrivals chan arrival
	exits    chan exitEvent
	respawns chan int

	refs           []jobRef
	byName         map[string]jobRef
	total          int
	maxAttempts    int
	shardTotal     []int // enumerated variants per shard
	shardRemaining []int // undelivered variants per shard
	remaining      int   // undelivered variants overall (retired shards excluded)

	attempt  []int // current attempt per shard
	spawned  []int // workers actually started per shard
	workers  []Worker
	lastSeen []time.Time
	live     int

	dead     []bool  // shards retired under AllowPartial
	failure  []error // terminal error of a retired shard
	poisoned []error // protocol error that poisoned the current attempt

	delivered map[string]struct{}            // variant keys already merged
	proved    []ProvedResult                 // merged results, arrival order
	pending   map[int]scenarios.StreamResult // out-of-order buffer by index
	next      int                            // next index owed to the sink
	accs      []*scenarios.Accumulator
	rng       *rand.Rand // seeded jitter source for retry backoff
}

// spawn starts (or restarts) the worker for one shard, seeding every variant
// already proved by any worker so the replacement replays them from cache.
// A refused spawn is a failed attempt like any other: it consumes budget and
// schedules a backed-off retry rather than aborting the run.
func (st *runState) spawn(shard int) error {
	if st.shardRemaining[shard] == 0 || st.dead[shard] {
		return nil
	}
	attempt := st.attempt[shard]
	spec := ShardSpec{Index: shard, Total: st.total}
	if attempt > 0 {
		spec.Seed = st.proved
	}
	st.spawned[shard]++
	w, err := st.c.opts.Transport.Start(st.ctx, spec)
	if err != nil {
		return st.attemptFailed(shard, fmt.Errorf("spawning shard %s attempt %d: %w", spec, attempt, err))
	}
	st.workers[shard] = w
	st.lastSeen[shard] = time.Now()
	st.live++
	go readWorker(w, shard, attempt, st.arrivals, st.exits)
	if h := st.c.opts.Hooks.OnSpawn; h != nil {
		h(shard, attempt, w)
	}
	return nil
}

// readWorker drains one worker's protocol stream, forwarding run lines and
// finally its exit (Wait error, or the protocol error that stopped reading).
// A malformed line — invalid JSON, an unrecognized shape, a truncated tail
// with no trailing newline — never panics and never merges: it stops the
// read with the offending line quoted in the error, which poisons only this
// attempt (the coordinator re-queues the shard, seeded with the prefix this
// worker already proved).
func readWorker(w Worker, shard, attempt int, arrivals chan<- arrival, exits chan<- exitEvent) {
	var readErr error
	sc := bufio.NewScanner(w.Output())
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		rep, ok, err := ParseResultLine(sc.Bytes())
		if err != nil {
			readErr = err
			break
		}
		if ok {
			arrivals <- arrival{shard: shard, attempt: attempt, report: rep}
		}
	}
	if readErr == nil {
		readErr = sc.Err()
	}
	waitErr := w.Wait()
	if readErr == nil {
		readErr = waitErr
	}
	exits <- exitEvent{shard: shard, attempt: attempt, err: readErr}
}

// handleArrival merges one run line: dedup by variant key, fold into the
// owner shard's accumulator, release contiguous results to the sink.  A
// syntactically valid line naming a variant the coordinator never enumerated
// is protocol corruption: it poisons the delivering attempt (kill + re-queue)
// instead of failing the whole run.
func (st *runState) handleArrival(a arrival) error {
	if a.attempt == st.attempt[a.shard] {
		st.lastSeen[a.shard] = time.Now()
	}
	ref, ok := st.byName[a.report.Name]
	if !ok {
		st.poisonAttempt(a.shard, a.attempt,
			fmt.Errorf("dist: shard %d reported unknown variant %q", a.shard, a.report.Name))
		return nil
	}
	key := ref.job.Key()
	if h := st.c.opts.Hooks.OnResult; h != nil {
		h(a.shard, a.attempt, key)
	}
	if st.dead[ref.shard] {
		return nil // the shard was retired; its holes are already released
	}
	if _, dup := st.delivered[key]; dup {
		return nil // idempotent re-delivery from a re-queued or slow worker
	}
	st.delivered[key] = struct{}{}
	res := a.report.Result(ref.job)
	st.proved = append(st.proved, ProvedResult{Options: ref.job.Options, Result: res})
	st.accs[ref.shard].Add(res)
	st.shardRemaining[ref.shard]--
	st.remaining--

	st.pending[ref.index] = scenarios.StreamResult{Index: ref.index, Job: ref.job, Result: res}
	return st.releaseReady()
}

// releaseReady delivers every result the ordered stream is now owed: buffered
// results at the next index, and — once a shard has been retired — the holes
// its undelivered variants leave, which would otherwise dam the stream.
func (st *runState) releaseReady() error {
	for {
		if sr, ok := st.pending[st.next]; ok {
			delete(st.pending, st.next)
			st.next++
			if err := st.sink.Consume(sr); err != nil {
				return fmt.Errorf("dist: sink: %w", err)
			}
			continue
		}
		if st.next < len(st.refs) {
			ref := st.refs[st.next]
			if st.dead[ref.shard] {
				if _, done := st.delivered[ref.job.Key()]; !done {
					st.next++ // a retired shard's hole: skip, the stream stays ordered
					continue
				}
			}
		}
		return nil
	}
}

// drainArrivals processes every result already buffered in the arrivals
// channel without blocking.
func (st *runState) drainArrivals() error {
	for {
		select {
		case a := <-st.arrivals:
			if err := st.handleArrival(a); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// poisonAttempt kills the current worker of a shard over a protocol fault.
// The kill surfaces as an ordinary exit whose cause is the recorded error,
// so the re-queue path (budget, backoff, seeding) is shared with crashes.
func (st *runState) poisonAttempt(shard, attempt int, cause error) {
	if attempt != st.attempt[shard] || st.workers[shard] == nil {
		return // a replaced worker's stale line
	}
	if st.poisoned[shard] == nil {
		st.poisoned[shard] = cause
	}
	st.workers[shard].Kill()
}

// handleExit reaps one worker.  An exit with the shard complete is success
// regardless of the exit error (the coordinator's own bookkeeping is the
// truth); an exit with work outstanding counts against the shard's attempt
// budget.
func (st *runState) handleExit(e exitEvent) error {
	if e.attempt != st.attempt[e.shard] {
		return nil // an already-replaced worker finally reaped
	}
	st.workers[e.shard] = nil
	st.live--
	cause := e.err
	if p := st.poisoned[e.shard]; p != nil {
		cause = p // the protocol fault that triggered the kill, not the kill itself
		st.poisoned[e.shard] = nil
	}
	if st.shardRemaining[e.shard] == 0 {
		return nil
	}
	return st.attemptFailed(e.shard, exitError(cause))
}

// attemptFailed charges one failed attempt against a shard's budget: within
// budget it schedules a (possibly backed-off) replacement; an exhausted
// budget either fails the run with a ShardError or, under AllowPartial,
// retires the shard and releases the stream past its holes.
func (st *runState) attemptFailed(shard int, cause error) error {
	used := st.attempt[shard] + 1
	if used >= st.maxAttempts {
		serr := &ShardError{
			Shard:      shard,
			Total:      st.total,
			Attempts:   used,
			Unfinished: st.shardRemaining[shard],
			Cause:      cause,
		}
		if !st.c.opts.AllowPartial {
			return serr
		}
		st.dead[shard] = true
		st.failure[shard] = serr
		st.remaining -= st.shardRemaining[shard]
		if h := st.c.opts.Hooks.OnRetire; h != nil {
			h(shard, serr)
		}
		return st.releaseReady()
	}
	st.attempt[shard]++
	delay := st.backoffDelay(st.attempt[shard])
	if delay <= 0 {
		return st.spawn(shard)
	}
	respawns, ctx := st.respawns, st.ctx
	time.AfterFunc(delay, func() {
		select {
		case respawns <- shard:
		case <-ctx.Done():
		}
	})
	return nil
}

// backoffDelay computes the wait before replacement `attempt` (1-based):
// exponential in the attempt number, capped, jittered by the seeded RNG.
func (st *runState) backoffDelay(attempt int) time.Duration {
	return backoffDelay(st.rng, st.c.opts.RetryBackoff, st.c.opts.RetryBackoffMax, attempt)
}

// backoffDelay is the pure backoff schedule: base<<(attempt-1) capped at max,
// scaled by a jitter factor in [0.5,1.5) drawn from rng.  A non-positive base
// disables backoff entirely.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max <= 0 {
		max = 16 * base
	}
	d := max
	if shift := uint(attempt - 1); shift < 16 {
		if exp := base << shift; exp > 0 && exp < max {
			d = exp
		}
	}
	return time.Duration((0.5 + rng.Float64()) * float64(d))
}

// outcome freezes the per-shard completion records of a finished run.
func (st *runState) outcome(merged *scenarios.Accumulator) *Outcome {
	o := &Outcome{Accumulator: merged, Shards: make([]ShardCompletion, st.total)}
	for s := 0; s < st.total; s++ {
		comp := ShardCompletion{
			Done:     st.shardTotal[s] - st.shardRemaining[s],
			Total:    st.shardTotal[s],
			Complete: st.shardRemaining[s] == 0,
			Attempts: st.spawned[s],
		}
		if err := st.failure[s]; err != nil {
			comp.Error = err.Error()
			o.Partial = true
		}
		o.Shards[s] = comp
	}
	return o
}

// exitError normalizes a nil worker error (a clean exit that nevertheless
// left work undone) into something reportable.
func exitError(err error) error {
	if err == nil {
		return errors.New("worker exited without finishing its shard")
	}
	return err
}

// killStalled kills current workers that have been silent past the stall
// timeout; the resulting exit event re-queues their shards.
func (st *runState) killStalled(now time.Time) {
	for shard, w := range st.workers {
		if w == nil || st.shardRemaining[shard] == 0 {
			continue
		}
		if now.Sub(st.lastSeen[shard]) > st.c.opts.StallTimeout {
			w.Kill()
		}
	}
}

// reapAll kills every live worker and waits for its reader goroutine to
// finish, so Run never leaks goroutines or child processes — on success,
// on error, and on cancellation alike.
func (st *runState) reapAll() {
	for _, w := range st.workers {
		if w != nil {
			w.Kill()
		}
	}
	for st.live > 0 {
		select {
		case <-st.arrivals: // discard: the run is over
		case <-st.exits:
			st.live--
		}
	}
}
