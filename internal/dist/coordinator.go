package dist

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/scenarios"
)

// Hooks are optional observation points, used by tests to inject failures
// (killing a worker after its k-th result) and by front-ends for progress.
// Both may be nil; both are called from the coordinator's main loop.
type Hooks struct {
	// OnSpawn fires after a worker for the given shard and attempt (0-based)
	// has started.
	OnSpawn func(shard, attempt int, w Worker)
	// OnResult fires for every run line a worker delivers, before
	// deduplication, with the variant key it carries.
	OnResult func(shard, attempt int, key string)
}

// Options configures a Coordinator.
type Options struct {
	// Workers is the shard count — one worker per shard.  Values below 1
	// default to 1.
	Workers int
	// Transport spawns the workers.  Required.
	Transport Transport
	// StallTimeout kills a worker that has produced no output line for this
	// long, triggering a re-queue.  Zero disables stall detection (process
	// exit still triggers re-queue).
	StallTimeout time.Duration
	// MaxRetries bounds replacement workers per shard; a shard that dies
	// more than MaxRetries times fails the whole run.  Zero means no
	// replacements.
	MaxRetries int
	// Hooks observes spawns and results.
	Hooks Hooks
}

// Coordinator runs a JobSource across sharded workers and merges their
// streams back into the single-process contract: the sink sees every variant
// exactly once, in global source order, and the returned Accumulator equals
// the one a single process would have produced.
type Coordinator struct {
	opts Options
}

// New validates options into a Coordinator.
func New(opts Options) (*Coordinator, error) {
	if opts.Transport == nil {
		return nil, errors.New("dist: Coordinator needs a Transport")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	return &Coordinator{opts: opts}, nil
}

// jobRef is the coordinator's record of one enumerated variant.
type jobRef struct {
	index int
	job   scenarios.Job
	shard int
}

// arrival is one parsed run line.
type arrival struct {
	shard, attempt int
	report         RunReport
}

// exitEvent is one worker termination, after its output is fully drained.
type exitEvent struct {
	shard, attempt int
	err            error
}

// Run executes src across the configured workers and streams the merged
// results to sink in global source order.  It returns the merged Accumulator;
// on failure the sink has seen a prefix of the stream and the error reports
// the first unrecoverable fault (a shard exceeding MaxRetries, a corrupt
// protocol stream, a sink error, or cancellation).
func (c *Coordinator) Run(ctx context.Context, src scenarios.JobSource, sink scenarios.ResultSink) (*scenarios.Accumulator, error) {
	n := c.opts.Workers

	// Enumerate the source once to know, independently of any worker, what
	// "complete" means: every variant, its global index, and its owner shard.
	// The shard key contract requires unique keys; enforce it here so a
	// violating source fails loudly instead of silently losing variants to
	// deduplication.
	var jobs []jobRef
	byName := make(map[string]jobRef)
	seenKeys := make(map[string]struct{})
	shardRemaining := make([]int, n)
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		key := job.Key()
		if _, dup := seenKeys[key]; dup {
			return nil, fmt.Errorf("dist: duplicate variant key %q in source", key)
		}
		seenKeys[key] = struct{}{}
		name := job.Scenario.Name
		if _, dup := byName[name]; dup {
			return nil, fmt.Errorf("dist: duplicate variant name %q in source", name)
		}
		ref := jobRef{index: len(jobs), job: job, shard: job.Shard(n)}
		byName[name] = ref
		jobs = append(jobs, ref)
		shardRemaining[ref.shard]++
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	arrivals := make(chan arrival, 64)
	exits := make(chan exitEvent, n)

	st := &runState{
		c:              c,
		ctx:            ctx,
		arrivals:       arrivals,
		exits:          exits,
		shardRemaining: shardRemaining,
		remaining:      len(jobs),
		byName:         byName,
		total:          n,
		attempt:        make([]int, n),
		workers:        make([]Worker, n),
		lastSeen:       make([]time.Time, n),
		delivered:      make(map[string]struct{}),
		pending:        make(map[int]scenarios.StreamResult),
		accs:           make([]*scenarios.Accumulator, n),
	}
	for i := range st.accs {
		st.accs[i] = &scenarios.Accumulator{}
	}
	defer st.reapAll()

	for shard := 0; shard < n; shard++ {
		if err := st.spawn(shard); err != nil {
			return nil, err
		}
	}

	var stall <-chan time.Time
	if c.opts.StallTimeout > 0 {
		t := time.NewTicker(c.opts.StallTimeout / 2)
		defer t.Stop()
		stall = t.C
	}

	for st.remaining > 0 {
		select {
		case a := <-arrivals:
			if err := st.handleArrival(a, sink); err != nil {
				return nil, err
			}
		case e := <-exits:
			if err := st.handleExit(e); err != nil {
				return nil, err
			}
		case now := <-stall:
			st.killStalled(now)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Merge the per-shard partials in shard order.  Merge order does not
	// affect the aggregate (TestAccumulatorMergeEquivalence); a fixed order
	// just keeps the walk deterministic.
	merged := &scenarios.Accumulator{}
	for _, acc := range st.accs {
		merged.Merge(acc)
	}
	return merged, nil
}

// runState is the bookkeeping of one Run call, owned by the main loop.
type runState struct {
	c        *Coordinator
	ctx      context.Context
	arrivals chan arrival
	exits    chan exitEvent

	byName         map[string]jobRef
	total          int
	shardRemaining []int // undelivered variants per shard
	remaining      int   // undelivered variants overall

	attempt  []int // current attempt per shard
	workers  []Worker
	lastSeen []time.Time
	live     int

	delivered map[string]struct{}            // variant keys already merged
	proved    []ProvedResult                 // merged results, arrival order
	pending   map[int]scenarios.StreamResult // out-of-order buffer by index
	next      int                            // next index owed to the sink
	accs      []*scenarios.Accumulator
}

// spawn starts (or restarts) the worker for one shard, seeding every variant
// already proved by any worker so the replacement replays them from cache.
func (st *runState) spawn(shard int) error {
	if st.shardRemaining[shard] == 0 {
		return nil
	}
	attempt := st.attempt[shard]
	spec := ShardSpec{Index: shard, Total: st.total}
	if attempt > 0 {
		spec.Seed = st.proved
	}
	w, err := st.c.opts.Transport.Start(st.ctx, spec)
	if err != nil {
		return fmt.Errorf("dist: spawning shard %s attempt %d: %w", spec, attempt, err)
	}
	st.workers[shard] = w
	st.lastSeen[shard] = time.Now()
	st.live++
	go readWorker(w, shard, attempt, st.arrivals, st.exits)
	if h := st.c.opts.Hooks.OnSpawn; h != nil {
		h(shard, attempt, w)
	}
	return nil
}

// readWorker drains one worker's protocol stream, forwarding run lines and
// finally its exit (Wait error, or the protocol error that stopped reading).
func readWorker(w Worker, shard, attempt int, arrivals chan<- arrival, exits chan<- exitEvent) {
	var readErr error
	sc := bufio.NewScanner(w.Output())
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	for sc.Scan() {
		rep, ok, err := ParseResultLine(sc.Bytes())
		if err != nil {
			readErr = err
			break
		}
		if ok {
			arrivals <- arrival{shard: shard, attempt: attempt, report: rep}
		}
	}
	if readErr == nil {
		readErr = sc.Err()
	}
	waitErr := w.Wait()
	if readErr == nil {
		readErr = waitErr
	}
	exits <- exitEvent{shard: shard, attempt: attempt, err: readErr}
}

// handleArrival merges one run line: dedup by variant key, fold into the
// owner shard's accumulator, release contiguous results to the sink.
func (st *runState) handleArrival(a arrival, sink scenarios.ResultSink) error {
	if a.attempt == st.attempt[a.shard] {
		st.lastSeen[a.shard] = time.Now()
	}
	ref, ok := st.byName[a.report.Name]
	if !ok {
		return fmt.Errorf("dist: shard %d reported unknown variant %q", a.shard, a.report.Name)
	}
	key := ref.job.Key()
	if h := st.c.opts.Hooks.OnResult; h != nil {
		h(a.shard, a.attempt, key)
	}
	if _, dup := st.delivered[key]; dup {
		return nil // idempotent re-delivery from a re-queued or slow worker
	}
	st.delivered[key] = struct{}{}
	res := a.report.Result(ref.job)
	st.proved = append(st.proved, ProvedResult{Options: ref.job.Options, Result: res})
	st.accs[ref.shard].Add(res)
	st.shardRemaining[ref.shard]--
	st.remaining--

	st.pending[ref.index] = scenarios.StreamResult{Index: ref.index, Job: ref.job, Result: res}
	for {
		sr, ok := st.pending[st.next]
		if !ok {
			return nil
		}
		delete(st.pending, st.next)
		st.next++
		if err := sink.Consume(sr); err != nil {
			return fmt.Errorf("dist: sink: %w", err)
		}
	}
}

// handleExit reaps one worker.  An exit with the shard complete is success
// regardless of the exit error (the coordinator's own bookkeeping is the
// truth); an exit with work outstanding re-queues the shard until MaxRetries
// is exhausted.
func (st *runState) handleExit(e exitEvent) error {
	if e.attempt != st.attempt[e.shard] {
		return nil // an already-replaced worker finally reaped
	}
	st.workers[e.shard] = nil
	st.live--
	if st.shardRemaining[e.shard] == 0 {
		return nil
	}
	if st.attempt[e.shard] >= st.c.opts.MaxRetries {
		return fmt.Errorf("dist: shard %d/%d failed after %d attempt(s), %d variant(s) unfinished: %w",
			e.shard, st.total, st.attempt[e.shard]+1, st.shardRemaining[e.shard], exitError(e.err))
	}
	st.attempt[e.shard]++
	return st.spawn(e.shard)
}

// exitError normalizes a nil worker error (a clean exit that nevertheless
// left work undone) into something reportable.
func exitError(err error) error {
	if err == nil {
		return errors.New("worker exited without finishing its shard")
	}
	return err
}

// killStalled kills current workers that have been silent past the stall
// timeout; the resulting exit event re-queues their shards.
func (st *runState) killStalled(now time.Time) {
	for shard, w := range st.workers {
		if w == nil || st.shardRemaining[shard] == 0 {
			continue
		}
		if now.Sub(st.lastSeen[shard]) > st.c.opts.StallTimeout {
			w.Kill()
		}
	}
}

// reapAll kills every live worker and waits for its reader goroutine to
// finish, so Run never leaks goroutines or child processes — on success,
// on error, and on cancellation alike.
func (st *runState) reapAll() {
	for _, w := range st.workers {
		if w != nil {
			w.Kill()
		}
	}
	for st.live > 0 {
		select {
		case <-st.arrivals: // discard: the run is over
		case <-st.exits:
			st.live--
		}
	}
}
