package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenarios"
)

// chaosOptions is the coordinator configuration every chaos test runs under:
// enough budget to survive one sabotaged attempt per shard, a stall timeout
// short enough to reclaim stalled shards quickly but long enough to outlast
// honest work on a loaded machine (the race detector slows simulation ~10×,
// so the budget stretches accordingly — a too-tight budget kills honest
// workers and burns the whole attempt budget on false positives), and
// near-immediate seeded backoff so the re-queue path (including the jittered
// AfterFunc) is exercised without slowing the suite.
func chaosOptions(tr Transport, seed int64) Options {
	stall := 2 * time.Second
	if raceEnabled {
		stall = 20 * time.Second
	}
	return Options{
		Workers:         3,
		MaxAttempts:     3,
		StallTimeout:    stall,
		RetryBackoff:    time.Millisecond,
		RetryBackoffMax: 4 * time.Millisecond,
		Seed:            seed,
		Transport:       tr,
	}
}

// TestChaosMatrix is the acceptance criterion of the fault-injection layer:
// every fault kind, across three seeds, injected between a real coordinator
// and real HTTP workers on loopback — and the merged NDJSON stream plus the
// aggregate trailer must come out byte-identical to the single-process run
// every single time.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family once per fault kind per seed over loopback HTTP")
	}
	sw := testSweep(t)
	srv := workerServer(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())

	for _, kind := range AllFaultKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				injected := 0
				ft := &FaultTransport{
					Inner:   &HTTPTransport{Hosts: []string{srv.URL}},
					Seed:    seed,
					Menu:    []FaultKind{kind},
					OnFault: func(shard, attempt int, k FaultKind, line int) { injected++ },
				}
				gotStream, gotAgg := distributed(t, chaosOptions(ft, seed), sw.Source())
				requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
				if injected == 0 {
					t.Errorf("seed %d: no %s fault was ever injected; the run proved nothing", seed, kind)
				}
			}
		})
	}
}

// TestChaosSmoke is the single-fault fixed-seed check CI runs under the race
// detector on every push: one mid-stream connection drop, in-process workers,
// byte-identical recovery.  Kept cheap on purpose — the full matrix is
// TestChaosMatrix.
func TestChaosSmoke(t *testing.T) {
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	ft := &FaultTransport{
		Inner: &LocalTransport{Source: sw.Source},
		Seed:  1,
		Menu:  []FaultKind{FaultDrop},
	}
	// No StallTimeout: a drop terminates its own stream, and the race
	// detector slows honest workers enough that a short stall budget would
	// kill them too.
	gotStream, gotAgg := distributed(t, Options{
		Workers:      3,
		MaxAttempts:  3,
		RetryBackoff: time.Millisecond,
		Seed:         1,
		Transport:    ft,
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}

// TestFaultTransportDeterministicReplay runs the same chaotic sweep twice
// with the same seed and requires the exact same faults at the exact same
// points — the property that makes a chaos failure replayable.
func TestFaultTransportDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice under chaos")
	}
	sw := testSweep(t)
	record := func() []string {
		var mu sync.Mutex
		var faults []string
		ft := &FaultTransport{
			Inner: &LocalTransport{Source: sw.Source},
			Seed:  42,
			OnFault: func(shard, attempt int, kind FaultKind, line int) {
				mu.Lock()
				faults = append(faults, fmt.Sprintf("shard=%d attempt=%d kind=%s line=%d", shard, attempt, kind, line))
				mu.Unlock()
			},
		}
		distributed(t, chaosOptions(ft, 42), sw.Source())
		sort.Strings(faults)
		return faults
	}
	first, second := record(), record()
	if len(first) == 0 {
		t.Fatal("no faults recorded; the transport injected nothing")
	}
	if got, want := strings.Join(second, "\n"), strings.Join(first, "\n"); got != want {
		t.Errorf("same seed, different faults:\n--- first run ---\n%s\n--- second run ---\n%s", want, got)
	}
}

// TestFaultKindNamesRoundTrip pins String/ParseFaultKind as inverses, which
// the -chaos flag and replay instructions rely on.
func TestFaultKindNamesRoundTrip(t *testing.T) {
	for _, k := range AllFaultKinds() {
		parsed, err := ParseFaultKind(k.String())
		if err != nil {
			t.Errorf("ParseFaultKind(%q): %v", k.String(), err)
		} else if parsed != k {
			t.Errorf("ParseFaultKind(%q) = %v, want %v", k.String(), parsed, k)
		}
	}
	if _, err := ParseFaultKind("meteor-strike"); err == nil {
		t.Error("an unknown fault name must be rejected")
	}
	if got := FaultKind(250).String(); !strings.Contains(got, "250") {
		t.Errorf("out-of-range FaultKind should stringify defensively, got %q", got)
	}
}

// refuseShardTransport permanently refuses one shard and delegates the rest —
// the unrecoverable-host scenario behind graceful degradation.
type refuseShardTransport struct {
	inner   Transport
	refused int

	mu     sync.Mutex
	starts map[int]int
}

func (t *refuseShardTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	t.mu.Lock()
	if t.starts == nil {
		t.starts = make(map[int]int)
	}
	t.starts[spec.Index]++
	t.mu.Unlock()
	if spec.Index == t.refused {
		return nil, errors.New("host permanently down")
	}
	return t.inner.Start(ctx, spec)
}

// shardCounts counts how many variants of src each of n shards owns.
func shardCounts(t *testing.T, src scenarios.JobSource, n int) []int {
	t.Helper()
	counts := make([]int, n)
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		counts[j.Shard(n)]++
	}
	return counts
}

// TestCoordinatorAllowPartial retires a permanently dead shard under
// AllowPartial and checks the whole degradation contract: no run error, the
// outcome flagged partial, the completion map naming exactly the dead shard,
// the live shards' results delivered in source order, and the partial fields
// present in the marshalled aggregate.
func TestCoordinatorAllowPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family minus one shard")
	}
	sw := testSweep(t)
	const n = 3
	counts := shardCounts(t, sw.Source(), n)
	// Refuse the busiest shard so the hole is as large as possible.
	victim := 0
	for s, c := range counts {
		if c > counts[victim] {
			victim = s
		}
	}
	if counts[victim] == 0 {
		t.Fatal("victim shard owns nothing; the degradation would be vacuous")
	}

	tr := &refuseShardTransport{inner: &LocalTransport{Source: sw.Source}, refused: victim}
	retired := -1
	var retireErr error
	coord, err := New(Options{
		Workers:      n,
		MaxAttempts:  2,
		AllowPartial: true,
		Transport:    tr,
		Hooks: Hooks{
			OnRetire: func(shard int, err error) { retired, retireErr = shard, err },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered []string
	outcome, err := coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(sr scenarios.StreamResult) error {
			delivered = append(delivered, sr.Job.Key())
			return nil
		}))
	if err != nil {
		t.Fatalf("AllowPartial must absorb the dead shard, got: %v", err)
	}

	if !outcome.Partial {
		t.Error("outcome of a run with a retired shard must be flagged Partial")
	}
	if retired != victim {
		t.Errorf("OnRetire reported shard %d, want %d", retired, victim)
	}
	if !errors.Is(retireErr, ErrShardFailed) {
		t.Errorf("the retirement cause should match ErrShardFailed, got: %v", retireErr)
	}
	if len(outcome.Shards) != n {
		t.Fatalf("completion map covers %d shards, want %d", len(outcome.Shards), n)
	}
	for s, c := range outcome.Shards {
		if s == victim {
			if c.Complete || c.Done != 0 || c.Total != counts[s] || c.Attempts != 2 || c.Error == "" {
				t.Errorf("dead shard completion wrong: %+v (want incomplete, 0/%d, 2 attempts, an error)", c, counts[s])
			}
			if !strings.Contains(c.Error, "host permanently down") {
				t.Errorf("dead shard's error should carry the root cause, got %q", c.Error)
			}
		} else if !c.Complete || c.Done != c.Total || c.Total != counts[s] || c.Error != "" {
			t.Errorf("live shard %d completion wrong: %+v (want complete %d/%d, no error)", s, c, counts[s], counts[s])
		}
	}
	if got := tr.starts[victim]; got != 2 {
		t.Errorf("dead shard was started %d time(s), want exactly its budget of 2", got)
	}

	// The delivered stream must be the single-process order with exactly the
	// dead shard's variants missing — graceful degradation never reorders or
	// drops live work.
	var want []string
	src := sw.Source()
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if j.Shard(n) != victim {
			want = append(want, j.Key())
		}
	}
	if got, wantS := strings.Join(delivered, "\n"), strings.Join(want, "\n"); got != wantS {
		t.Errorf("partial delivery is not \"source order minus the dead shard\":\n--- want ---\n%s\n--- got ---\n%s", wantS, got)
	}
	if outcome.Runs() != len(want) {
		t.Errorf("partial aggregate covers %d runs, want %d", outcome.Runs(), len(want))
	}

	// And the marshalled trailer must carry the degradation, keyed by shard.
	rep := outcome.Report()
	if !rep.Partial {
		t.Error("partial outcome's AggregateReport must set Partial")
	}
	c, ok := rep.Completion[fmt.Sprint(victim)]
	if !ok {
		t.Fatalf("completion map is missing the dead shard %d: %v", victim, rep.Completion)
	}
	if c.Complete {
		t.Error("the dead shard is marked complete in the trailer")
	}
}

// TestCompleteOutcomeOmitsPartialFields pins the byte-identity guard: a
// complete distributed run's trailer must marshal without partial/completion
// fields, exactly like the single-process trailer.
func TestCompleteOutcomeOmitsPartialFields(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family")
	}
	sw := testSweep(t)
	coord, err := New(Options{Workers: 3, AllowPartial: true, Transport: &LocalTransport{Source: sw.Source}})
	if err != nil {
		t.Fatal(err)
	}
	outcome, err := coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Partial {
		t.Fatal("a clean run came back partial")
	}
	rep := outcome.Report()
	if rep.Partial || rep.Completion != nil {
		t.Errorf("complete trailer must omit partial fields, got Partial=%v Completion=%v", rep.Partial, rep.Completion)
	}
}

// TestErrShardFailedIdentity pins the typed shard-failure error: it matches
// the ErrShardFailed sentinel through errors.Is and names the shard and its
// attempt count.
func TestErrShardFailedIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two shards of the scenario-7 family")
	}
	sw := testSweep(t)
	coord, err := New(Options{
		Workers:     3,
		MaxAttempts: 2,
		Transport:   &refuseShardTransport{inner: &LocalTransport{Source: sw.Source}, refused: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err == nil {
		t.Fatal("an exhausted shard without AllowPartial must fail the run")
	}
	if !errors.Is(err, ErrShardFailed) {
		t.Errorf("errors.Is(err, ErrShardFailed) is false for: %v", err)
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("the failure should be a *ShardError, got %T: %v", err, err)
	}
	if se.Shard != 0 || se.Attempts != 2 {
		t.Errorf("ShardError names shard %d after %d attempts, want shard 0 after 2", se.Shard, se.Attempts)
	}
	for _, frag := range []string{"shard 0/3", "2 attempt(s)", "host permanently down"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error message %q is missing %q", err, frag)
		}
	}
}

// TestBackoffDelayDeterministicBounds pins backoffDelay: same seed → same
// delays, every delay within the jitter envelope of the capped exponential,
// zero base disables backoff entirely.
func TestBackoffDelayDeterministicBounds(t *testing.T) {
	const base, max = 100 * time.Millisecond, time.Second
	rng := rand.New(rand.NewSource(7))
	for attempt := 1; attempt <= 20; attempt++ {
		d := backoffDelay(rng, base, max, attempt)
		exp := max
		if shift := uint(attempt - 1); shift < 16 {
			if e := base << shift; e > 0 && e < max {
				exp = e
			}
		}
		lo, hi := exp/2, exp+exp/2
		if d < lo || d >= hi {
			t.Errorf("attempt %d: delay %v outside jitter envelope [%v, %v) of %v", attempt, d, lo, hi, exp)
		}
	}
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 8; attempt++ {
		if da, db := backoffDelay(a, base, max, attempt), backoffDelay(b, base, max, attempt); da != db {
			t.Errorf("attempt %d: same seed gave %v then %v", attempt, da, db)
		}
	}
	if d := backoffDelay(rng, 0, max, 3); d != 0 {
		t.Errorf("zero base must disable backoff, got %v", d)
	}
}

// TestBackoffDelaysRespawn checks the coordinator actually waits out the
// jittered backoff between a shard's failure and its re-queue: the gap
// between the two spawn attempts must be at least the jitter floor (half the
// base delay).
func TestBackoffDelaysRespawn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family with one delayed re-queue")
	}
	sw := testSweep(t)
	const base = 60 * time.Millisecond
	// Fail shard 0's first spawn outright, then let everything through.
	tr := &spawnClockTransport{
		inner:     &LocalTransport{Source: sw.Source},
		failFirst: 0,
	}
	gotStream, gotAgg := distributed(t, Options{
		Workers:      3,
		MaxAttempts:  2,
		RetryBackoff: base,
		Seed:         9,
		Transport:    tr,
	}, sw.Source())
	wantStream, wantAgg := singleProcess(t, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)

	times := tr.times[0]
	if len(times) != 2 {
		t.Fatalf("shard 0 saw %d spawn attempt(s), want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < base/2 {
		t.Errorf("re-queue after %v, want at least the %v jitter floor", gap, base/2)
	}
}

// spawnClockTransport records when each shard's spawns happen and optionally
// fails one shard's first spawn.
type spawnClockTransport struct {
	inner     Transport
	failFirst int

	mu    sync.Mutex
	times map[int][]time.Time
}

func (t *spawnClockTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	t.mu.Lock()
	if t.times == nil {
		t.times = make(map[int][]time.Time)
	}
	n := len(t.times[spec.Index])
	t.times[spec.Index] = append(t.times[spec.Index], time.Now())
	t.mu.Unlock()
	if spec.Index == t.failFirst && n == 0 {
		return nil, errors.New("transient spawn refusal")
	}
	return t.inner.Start(ctx, spec)
}

// bogusLine is a syntactically valid run report naming a variant no sweep
// contains — the protocol-level poison the coordinator must survive.
const bogusLine = "{\"name\":\"no-such-variant\",\"scenario\":99}\n"

// bogusPrefixTransport prepends bogusLine to a shard's stream: on the first
// attempt only, or on every attempt.
type bogusPrefixTransport struct {
	inner  Transport
	shard  int
	always bool

	mu     sync.Mutex
	starts map[int]int
}

func (t *bogusPrefixTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	t.mu.Lock()
	if t.starts == nil {
		t.starts = make(map[int]int)
	}
	n := t.starts[spec.Index]
	t.starts[spec.Index]++
	t.mu.Unlock()
	w, err := t.inner.Start(ctx, spec)
	if err != nil {
		return nil, err
	}
	if spec.Index == t.shard && (t.always || n == 0) {
		return &prefixWorker{Worker: w, r: io.MultiReader(strings.NewReader(bogusLine), w.Output())}, nil
	}
	return w, nil
}

type prefixWorker struct {
	Worker
	r io.Reader
}

func (w *prefixWorker) Output() io.Reader { return w.r }

// TestCoordinatorPoisonedAttemptRecovers feeds shard 0's first attempt an
// unknown-variant line: that attempt must be poisoned and re-queued, the
// replacement must finish cleanly, and the merged output must stay
// byte-identical.
func TestCoordinatorPoisonedAttemptRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice, once with a poisoned attempt")
	}
	sw := testSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	tr := &bogusPrefixTransport{inner: &LocalTransport{Source: sw.Source}, shard: 0}
	gotStream, gotAgg := distributed(t, Options{
		Workers:     3,
		MaxAttempts: 2,
		Transport:   tr,
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
	if got := tr.starts[0]; got != 2 {
		t.Errorf("the poisoned shard was started %d time(s), want 2 (original + replacement)", got)
	}
}

// TestCoordinatorPoisonedBudgetExhausted poisons every attempt of shard 0 and
// checks the run fails with the alien variant named.
func TestCoordinatorPoisonedBudgetExhausted(t *testing.T) {
	if testing.Short() {
		t.Skip("runs shards of the scenario-7 family until a budget exhausts")
	}
	sw := testSweep(t)
	coord, err := New(Options{
		Workers:     3,
		MaxAttempts: 2,
		Transport:   &bogusPrefixTransport{inner: &LocalTransport{Source: sw.Source}, shard: 0, always: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err == nil {
		t.Fatal("a permanently poisoned shard must fail the run")
	}
	if !errors.Is(err, ErrShardFailed) {
		t.Errorf("exhaustion should match ErrShardFailed, got: %v", err)
	}
	if !strings.Contains(err.Error(), `unknown variant "no-such-variant"`) {
		t.Errorf("the error should name the alien variant, got: %v", err)
	}
}

// truncatedWorkerTransport hands shard 0 a worker whose stream ends mid-line,
// every time — the partial-write of a dying peer, with no honest replacement.
type truncatedWorkerTransport struct{ inner Transport }

func (t *truncatedWorkerTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if spec.Index == 0 {
		return staticWorker{data: `{"name":"veh`}, nil
	}
	return t.inner.Start(ctx, spec)
}

type staticWorker struct{ data string }

func (w staticWorker) Output() io.Reader { return strings.NewReader(w.data) }
func (w staticWorker) Wait() error       { return nil }
func (w staticWorker) Kill() error       { return nil }

// TestCoordinatorTruncatedLinePoisonsAttempt pins satellite (b): a stream
// ending in a partial line must fail that attempt with the offending bytes
// quoted — never merge, never panic.
func TestCoordinatorTruncatedLinePoisonsAttempt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs shards of the scenario-7 family against a truncating worker")
	}
	sw := testSweep(t)
	coord, err := New(Options{
		Workers:     3,
		MaxAttempts: 1,
		Transport:   &truncatedWorkerTransport{inner: &LocalTransport{Source: sw.Source}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), sw.Source(), scenarios.SinkFunc(
		func(scenarios.StreamResult) error { return nil }))
	if err == nil {
		t.Fatal("a truncated stream with no retry budget must fail the run")
	}
	if !errors.Is(err, ErrShardFailed) {
		t.Errorf("the truncation should exhaust the shard, got: %v", err)
	}
	if !strings.Contains(err.Error(), "malformed result line") || !strings.Contains(err.Error(), "veh") {
		t.Errorf("the error should quote the offending partial line, got: %v", err)
	}
}
