package dist

// HTTP realization of the worker protocol: a ShardSpec is POSTed as JSON and
// the worker streams back the exact `scenarios -stream` NDJSON as a chunked
// response, so the coordinator's merge path is untouched — an HTTP worker is
// indistinguishable from a child process that happens to live on another
// host.
//
//lint:deterministic — no wall-clock reads or global randomness may decide
// what a shard computes; timeouts shape only *when* bytes move, never what
// they say.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/scenarios"
)

// workerErrTrailer is the HTTP trailer a worker uses to report an evaluation
// error after the response body has started streaming (the status line is
// long gone by then).  An empty or absent trailer means the stream ended
// cleanly.
const workerErrTrailer = "X-Sweep-Worker-Error"

// DefaultShardPath is the URL path a worker daemon serves shard requests on.
const DefaultShardPath = "/shard"

// HTTPTransport runs each shard on a remote worker daemon (cmd/sweepworker):
// Start POSTs the ShardSpec as JSON to hosts[shard mod len(hosts)] and the
// response body is the worker's NDJSON stream.  Kill maps to cancelling the
// per-request context, which tears the connection down mid-stream — the
// closest HTTP analogue of SIGKILL — and the coordinator's stall detection,
// retry budget and seeded re-queue work unchanged on top.
type HTTPTransport struct {
	// Hosts is the static worker list, as base URLs ("http://host:port") or
	// bare host:port pairs (http:// is assumed).  Shard i is served by
	// Hosts[i mod len(Hosts)], so fewer hosts than shards just means hosts
	// serve several shards concurrently.
	Hosts []string
	// Path is the shard endpoint on each host; empty means DefaultShardPath.
	Path string
	// ConnectTimeout bounds dialing a worker host (default 5s); a refused
	// or unreachable host fails the spawn, which the coordinator charges
	// against the shard's attempt budget like any other failed attempt.
	ConnectTimeout time.Duration
	// HeaderTimeout bounds the wait for the response headers (default 30s),
	// which is how long Start may block the coordinator's main loop.
	HeaderTimeout time.Duration
	// Client overrides the HTTP client (nil builds one from the timeouts).
	Client *http.Client

	once   sync.Once
	client *http.Client
}

// httpClient resolves the client once, honoring the configured timeouts.
func (t *HTTPTransport) httpClient() *http.Client {
	t.once.Do(func() {
		if t.Client != nil {
			t.client = t.Client
			return
		}
		connect := t.ConnectTimeout
		if connect <= 0 {
			connect = 5 * time.Second
		}
		header := t.HeaderTimeout
		if header <= 0 {
			header = 30 * time.Second
		}
		t.client = &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: connect}).DialContext,
			ResponseHeaderTimeout: header,
		}}
	})
	return t.client
}

// Start implements Transport.
func (t *HTTPTransport) Start(ctx context.Context, spec ShardSpec) (Worker, error) {
	if len(t.Hosts) == 0 {
		return nil, errors.New("dist: HTTPTransport needs at least one host")
	}
	host := t.Hosts[spec.Index%len(t.Hosts)]
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("dist: encoding shard %s spec: %w", spec, err)
	}
	path := t.Path
	if path == "" {
		path = DefaultShardPath
	}
	// The request context outlives Start: it is the worker's whole lifetime,
	// and cancelling it is Kill.
	rctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, joinHostPath(host, path), bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, fmt.Errorf("dist: shard %s request to %s: %w", spec, host, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.httpClient().Do(req)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("dist: shard %s to %s: %w", spec, host, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("dist: shard %s to %s: %s: %s", spec, host, resp.Status, bytes.TrimSpace(msg))
	}
	return &httpWorker{resp: resp, cancel: cancel}, nil
}

// joinHostPath builds the shard URL, defaulting the scheme to http.
func joinHostPath(host, path string) string {
	if !strings.Contains(host, "://") {
		host = "http://" + host
	}
	return strings.TrimRight(host, "/") + path
}

// httpWorker is one in-flight shard request.
type httpWorker struct {
	resp   *http.Response
	cancel context.CancelFunc

	mu     sync.Mutex
	killed bool
}

// Output implements Worker: the chunked response body is the NDJSON stream.
func (w *httpWorker) Output() io.Reader { return w.resp.Body }

// Wait implements Worker.  It is called after the reader has drained Output;
// a bounded extra drain reaches EOF when only the trailer boundary remains,
// making the worker's error trailer visible, and then the request is
// released.  A worker still streaming megabytes after its reader gave up is
// simply cancelled.
func (w *httpWorker) Wait() error {
	io.Copy(io.Discard, io.LimitReader(w.resp.Body, 64<<10))
	w.cancel()
	w.resp.Body.Close()
	w.mu.Lock()
	killed := w.killed
	w.mu.Unlock()
	if killed {
		return errors.New("dist: http worker killed")
	}
	if msg := w.resp.Trailer.Get(workerErrTrailer); msg != "" {
		return fmt.Errorf("dist: http worker: %s", msg)
	}
	return nil
}

// Kill implements Worker: cancelling the request context aborts the
// connection, so the reader sees a transport error instead of a clean EOF —
// exactly what a crashed remote worker would look like.
func (w *httpWorker) Kill() error {
	w.mu.Lock()
	w.killed = true
	w.mu.Unlock()
	w.cancel()
	return nil
}

// maxShardSpecBytes bounds a POSTed ShardSpec.  A seed of every variant of
// the 1296-variant huge sweep is on the order of a megabyte; 64 MiB of
// headroom rejects runaway bodies without constraining real sweeps.
const maxShardSpecBytes = 64 << 20

// WorkerServer serves shard evaluations over HTTP: cmd/sweepworker mounts it
// on DefaultShardPath.  Each POST carries a ShardSpec; the response streams
// the exact single-process NDJSON protocol — one RunReport line per variant
// of the shard, flushed as produced so the coordinator's stall detection
// sees liveness, then the aggregate trailer line.  Request cancellation
// (client gone, coordinator Kill) cancels the evaluation through the
// engine's ordinary context path.
//
// The server and the coordinator must be configured with the same sweep
// selection: a mismatched server reports variants the coordinator never
// enumerated, which poisons the attempt and, once the budget is exhausted,
// fails the shard with the offending variant named.
type WorkerServer struct {
	// Source returns a fresh enumeration of the full job stream, exactly as
	// a local worker process would enumerate it.  Required.
	Source func() scenarios.JobSource
	// Workers sizes each request's engine pool (non-positive defaults to
	// GOMAXPROCS).
	Workers int
}

// ServeHTTP implements http.Handler.
func (s *WorkerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "shard requests are POST", http.StatusMethodNotAllowed)
		return
	}
	if s.Source == nil {
		http.Error(w, "worker has no job source configured", http.StatusInternalServerError)
		return
	}
	var spec ShardSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, maxShardSpecBytes)).Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("malformed shard spec: %v", err), http.StatusBadRequest)
		return
	}
	if spec.Total < 1 || spec.Index < 0 || spec.Index >= spec.Total {
		http.Error(w, fmt.Sprintf("invalid shard %d/%d", spec.Index, spec.Total), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Trailer", workerErrTrailer)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	engine := scenarios.NewEngine(
		scenarios.WithWorkers(s.Workers),
		scenarios.WithRetention(scenarios.SummaryOnly),
		scenarios.WithResultCache(),
	)
	for _, p := range spec.Seed {
		engine.SeedResult(p.Job(), p.Result)
	}

	enc := json.NewEncoder(w)
	var acc scenarios.Accumulator
	src := scenarios.ShardSource(s.Source(), spec.Index, spec.Total)
	err := engine.Stream(r.Context(), src, scenarios.Tee(&acc, scenarios.SinkFunc(
		func(sr scenarios.StreamResult) error {
			if err := enc.Encode(NewRunReport(sr)); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		})))
	if err == nil {
		err = enc.Encode(NewAggregateReport(&acc))
	}
	if err != nil {
		// Headers are long sent; the trailer is the only channel left.
		w.Header().Set(workerErrTrailer, err.Error())
	}
}
