// Package dist runs a scenario sweep across multiple worker processes and
// merges their result streams back into the single-process evaluation
// contract: the merged NDJSON stream and final aggregate of a distributed
// run are byte-identical to what one process streaming the same JobSource
// would have produced — including when workers die mid-sweep.
//
// The design takes Kopetz's system-of-systems framing seriously: once the
// evaluation spans processes, the evaluation itself is a composite of
// independently-failing constituents, so a lost worker is an expected event
// the coordinator absorbs, not an assertion failure.  Three mechanisms make
// that safe:
//
// # Deterministic sharding (the shard key contract)
//
// Work is partitioned by stable variant key, never by arrival order.  Every
// job has a canonical identity, scenarios.Job.Key — scenario name, effective
// duration, full options label — and an owner shard, scenarios.Job.Shard(n),
// the FNV-1a hash of that key mod the worker count.  Both are pure functions
// of the variant, independent of process, platform and Go version, so the
// coordinator and every worker agree on the partition without communicating:
// a worker is just the ordinary scenarios binary running
// `-shard i/n`, which wraps its own enumeration of the same source in
// scenarios.ShardSource.  The contract requires variant keys to be unique
// within a source (every sweep generator guarantees this); the coordinator
// rejects sources that violate it.
//
// # Coordinated merge
//
// The Coordinator spawns one worker per shard through a small Transport
// interface (ExecTransport runs local processes; LocalTransport runs
// in-process engines; an HTTP or socket transport can implement the same two
// methods).  Each worker streams RunReport NDJSON lines; the coordinator
// maps each line back to the job it enumerated itself, rebuilds the
// scenarios.Result, and delivers it through the ordered ResultSink path —
// deduplicated by variant key, reordered into global source order, folded
// into one Accumulator per shard.  When every variant has been delivered the
// per-shard accumulators are merged (Accumulator.Merge, order-independent)
// into the final aggregate.
//
// # Re-queue and idempotence
//
// Worker loss is detected two ways: process exit with the shard incomplete,
// and a per-shard stall timeout (no output line for StallTimeout).  Either
// way the shard is re-queued: a replacement worker is spawned for the same
// `-shard i/n` slice, seeded (ProvedResult NDJSON via `-seed-results`) with
// every variant any worker already proved, so the engine's result cache
// replays the proved prefix instead of re-simulating it and only the
// genuinely unfinished variants cost simulation time.  Re-delivery is
// harmless by construction: results are idempotent by variant key, and a
// slow-then-recovered worker's duplicates are dropped at the coordinator's
// dedup sink.  Every variant therefore reaches the output exactly once, in
// source order, whatever the failure history.
package dist
