// Package dist runs a scenario sweep across multiple worker processes and
// merges their result streams back into the single-process evaluation
// contract: the merged NDJSON stream and final aggregate of a distributed
// run are byte-identical to what one process streaming the same JobSource
// would have produced — including when workers die mid-sweep.
//
// The design takes Kopetz's system-of-systems framing seriously: once the
// evaluation spans processes, the evaluation itself is a composite of
// independently-failing constituents, so a lost worker is an expected event
// the coordinator absorbs, not an assertion failure.  Three mechanisms make
// that safe:
//
// # Deterministic sharding (the shard key contract)
//
// Work is partitioned by stable variant key, never by arrival order.  Every
// job has a canonical identity, scenarios.Job.Key — scenario name, effective
// duration, full options label — and an owner shard, scenarios.Job.Shard(n),
// the FNV-1a hash of that key mod the worker count.  Both are pure functions
// of the variant, independent of process, platform and Go version, so the
// coordinator and every worker agree on the partition without communicating:
// a worker is just the ordinary scenarios binary running
// `-shard i/n`, which wraps its own enumeration of the same source in
// scenarios.ShardSource.  The contract requires variant keys to be unique
// within a source (every sweep generator guarantees this); the coordinator
// rejects sources that violate it.
//
// # Coordinated merge
//
// The Coordinator spawns one worker per shard through a small Transport
// interface.  Four implementations ship, all speaking the same NDJSON
// protocol, so the coordinator's merge path is identical whichever carries
// the bytes:
//
//   - ExecTransport runs local `scenarios -shard i/n` child processes;
//     Kill is SIGKILL.
//   - LocalTransport runs in-process engines over an io.Pipe; Kill cancels
//     the engine's context.  No processes, no sockets — the fast path for
//     tests and single-machine runs.
//   - HTTPTransport POSTs the ShardSpec (shard index, total, proved seed
//     results) as JSON to long-running sweepworker daemons (see
//     cmd/sweepworker) and reads the chunked NDJSON response; Kill cancels
//     the request context, which tears down the connection mid-stream.
//     Hosts are assigned round-robin by shard index, so a re-queued shard
//     lands on the same host list deterministically.
//   - FaultTransport wraps any of the above and injects seeded,
//     deterministic faults (see below).
//
// Each worker streams RunReport NDJSON lines; the coordinator
// maps each line back to the job it enumerated itself, rebuilds the
// scenarios.Result, and delivers it through the ordered ResultSink path —
// deduplicated by variant key, reordered into global source order, folded
// into one Accumulator per shard.  When every variant has been delivered the
// per-shard accumulators are merged (Accumulator.Merge, order-independent)
// into the final aggregate.
//
// # Re-queue and idempotence
//
// Worker loss is detected two ways: process exit with the shard incomplete,
// and a per-shard stall timeout (no output line for StallTimeout).  Either
// way the shard is re-queued: a replacement worker is spawned for the same
// `-shard i/n` slice, seeded (ProvedResult NDJSON via `-seed-results`) with
// every variant any worker already proved, so the engine's result cache
// replays the proved prefix instead of re-simulating it and only the
// genuinely unfinished variants cost simulation time.  Re-delivery is
// harmless by construction: results are idempotent by variant key, and a
// slow-then-recovered worker's duplicates are dropped at the coordinator's
// dedup sink.  Every variant therefore reaches the output exactly once, in
// source order, whatever the failure history.
//
// # Retry budgets and backoff
//
// Options.MaxAttempts bounds how many workers (first plus replacements) a
// shard may consume before it fails; a corrupt or alien result line poisons
// only the attempt that produced it, never the whole sweep.  Replacement
// spawns are delayed by seeded exponential backoff with jitter
// (Options.RetryBackoff doubling per attempt up to Options.RetryBackoffMax,
// scaled by a jitter factor in [0.5, 1.5) drawn from Options.Seed) so a
// struggling host is not hammered, and the same seed replays the same delay
// schedule.  A shard that exhausts its budget fails the sweep with
// ErrShardFailed — a *ShardError naming the shard, the attempt count and the
// number of unfinished variants — unless Options.AllowPartial is set, in
// which case the shard is retired: its variants are skipped in the ordered
// release, the sweep completes, Outcome.Partial is true, and
// Outcome.Shards records per-shard completion (done/total counts, attempts,
// final error) so the caller can see exactly what is missing.  When every
// shard completes, the partial machinery leaves no trace: the output stays
// byte-identical to the single-process run, which remains the hard
// invariant.
//
// # Deterministic fault injection
//
// FaultTransport is the chaos layer: it wraps any inner Transport and
// sabotages attempts from a seeded menu — spawn-refusal, drop (stream
// severed between lines), corrupt (one line mangled to non-JSON), truncate
// (stream ends mid-line), duplicate (one line delivered twice), stall
// (stream stops and never closes; only the stall timeout recovers it), and
// slow (lines dripped with a delay).  Every fault decision comes from
// rand.New(rand.NewSource(Seed ^ shard<<32 ^ attempt)), so a fault schedule is a
// pure function of (Seed, shard, attempt): re-running with the same seed
// replays exactly the same sabotage, which turns any chaos-found bug into a
// deterministic regression test.  The chaos matrix test drives every fault
// kind through FaultTransport(HTTPTransport) on loopback and requires
// byte-identical output; `sweepd -chaos <kinds> -chaos-seed N` exposes the
// same layer on the command line.
package dist
