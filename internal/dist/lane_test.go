package dist

// Distributed differential for lane-batched execution: LocalTransport
// workers build their engines with the default configuration, so lane
// batching is active inside every shard.  The defect sweep's consecutive
// variants almost all carry distinct DynamicsKeys with equal scheduled
// durations — exactly the stream shape the dispatcher widens into lane
// batches — and sharding additionally cuts those batches at arbitrary
// boundaries.  The merged output must still be byte-identical to the
// single-process reference.

import (
	"testing"
	"time"

	"repro/internal/scenarios"
)

// laneSweep is the defect sweep with trimmed durations: per-feature defect
// subsets and perturbed driver schedules yield width-1 dynamics groups in
// long equal-duration runs, so every shard executes real multi-lane batches
// (plus ragged remainders at shard edges).
func laneSweep(t *testing.T) scenarios.Sweep {
	t.Helper()
	sw, err := scenarios.SweepBySize("defects")
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 500 * time.Millisecond
	}
	return sw
}

func TestCoordinatorLanedDefectSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 120-variant defect sweep twice")
	}
	sw := laneSweep(t)
	wantStream, wantAgg := singleProcess(t, sw.Source())
	gotStream, gotAgg := distributed(t, Options{
		Workers:   3,
		Transport: &LocalTransport{Source: sw.Source},
	}, sw.Source())
	requireIdentical(t, wantStream, wantAgg, gotStream, gotAgg)
}
