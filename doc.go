// Package repro is a Go reproduction of "System Safety as an Emergent
// Property in Composite Systems" (Jennifer A. Black, Carnegie Mellon
// University, 2009).
//
// The library implements the thesis' three contributions — the formal
// framework for composable and emergent safety goals, Indirect Control Path
// Analysis (ICPA), and hierarchical run-time safety-goal monitoring —
// together with every substrate the evaluation depends on: a past-time
// temporal-logic engine, KAOS-style goals and agents, traditional hazard
// analysis baselines (PHA, FTA, FMEA), a fixed-step simulation kernel, the
// Chapter 4 distributed elevator and the Chapter 5 semi-autonomous vehicle
// with its ten evaluation scenarios.
//
// State is slot-indexed and stored as struct-of-arrays planes: each scenario
// run owns a temporal.Schema (an interned name → slot symbol table, plus an
// interned enumeration-string table) and a temporal.State keeps its slots as
// a kind plane, a []float64 number plane, a packed boolean bit plane and a
// small-int enumeration plane.  A bus commit is a few pointer-free memmoves
// (~13 bytes per slot, no GC write barriers), a snapshot clones the planes,
// and goal monitors compiled with temporal.CompileWithSchema evaluate their
// atoms directly on the planes — a numeric comparison is one float compare,
// equality against an enumeration constant one int compare, and no string is
// hashed or Value constructed anywhere on the per-step path.  Components
// address signals through typed handles (sim.Bus.NumVar/BoolVar/StringVar);
// the name-keyed bus and state APIs remain as the schema-resolving
// compatibility path, and differential tests prove the plane-backed and
// string-keyed evaluations produce identical detections across the full
// evaluation.
//
// Whole runs are reusable: sim.Simulation.Reset rewinds the bus planes
// without re-interning and restores every component implementing
// sim.Resetter to its initial conditions, so an Engine worker executes its
// sweep variants on a run arena — one schema, bus, component set and one
// compiled program per tolerance — and the steady state of a summary-only
// sweep allocates nothing per simulation step (gated by
// testing.AllocsPerRun regression tests, with before/after numbers recorded
// in README.md and the committed benchmark baseline).
//
// Job identity is split into what is simulated and how it is observed:
// scenarios.Job.DynamicsKey canonicalizes everything that determines the
// simulated trajectory (physical parameters, duration, driver schedule,
// resolved defect corrections) and MonitorKey everything that only affects
// observation (the hit-matching tolerance), with reflection guard tests
// forcing every Scenario and Options field to be classified into exactly one
// side.  The Engine batches consecutive jobs with equal DynamicsKeys into
// one group per worker and simulates the trajectory once: the compiled
// suite observes the single pass and each job's summary is classified from
// the recorded violation intervals at that job's own tolerance
// (monitor.Suite.FastSummaryAt — sound because the tolerance parameterizes
// only interval matching, never which intervals a run records), so a
// K-tolerance sweep does ceil(variants/K) simulation passes instead of
// one per variant.  Every result still streams under its own Job.Key in
// source order — sharding, caching, dedup and the distributed merge are
// byte-identical with grouping on or off — and Engine.GroupStats reports
// groups formed, variants carried and simulation passes saved.
//
// Groups with different dynamics widen further into lanes: the SoA planes
// carry an inner lane dimension (physical index slot*lanes + lane, booleans
// packed at bit slot*lanes+lane), so up to 64 distinct trajectories occupy
// one widened Registers and a single pointer-free commit advances all of
// them.  A lane-mode temporal.Program (StepLanes) evaluates each node to a
// per-lane uint64 verdict mask — one pass over the shared node array serves
// every lane — and monitor.LaneSuite folds mask diffs into per-lane
// violation intervals, touching per-lane state only on ticks where some
// lane's verdict changed.  The Engine's dispatcher batches consecutive
// equal-duration dynamics groups into lane tasks (WithLanes, on by default
// for summary-only runs; ragged remainders fall back to the scalar arena),
// per-lane stop masks retire collided lanes early, and differential tests
// prove the laned stream byte-identical to the scalar one across the full
// evaluation.  Engine.LaneStats reports batches widened, lanes carried and
// ragged fallbacks; BENCH_9.json records the speedup.
//
// Monitoring is evaluated as one composed artifact: temporal.Program
// compiles every goal and subgoal formula of a monitor suite into a single
// flat, topologically ordered node array with common subexpressions
// hash-consed away, so each shared atom and subformula is evaluated exactly
// once per observed state however many formulas reference it (the vehicle
// plan's 49 formulas collapse from 360 node references to 159 nodes).
// monitor.CompiledSuite feeds the program's per-formula verdicts into
// lightweight interval recorders and reuses the Hierarchy / Classify /
// Report machinery unchanged; Reset makes one compiled program serve run
// after run, which is how a sweep worker monitors every variant it executes
// with a single compilation.  The per-monitor (scenarios.BuildSuite) and
// string-keyed (temporal.CompileReference) paths remain as reference
// implementations that differential tests compare the program against.
//
// Scenario evaluation is built around the streaming scenarios.Engine: jobs
// are pulled lazily from a JobSource (Family and Sweep expose generator
// forms, so a parameter grid of any size never materializes a job slice),
// each Result is pushed to a ResultSink as it completes — in source order by
// default — and a trace-retention policy (KeepTrace or SummaryOnly) decides
// whether sweep memory is O(variants) or O(workers).  Runs are bounded and
// cancelled through a context.Context; cancellation drains in-flight work
// and leaves a valid partial aggregate in the Accumulator sink.  The batch
// entry points (scenarios.Runner, RunAll, RunSweep) remain as thin
// compatibility wrappers over the Engine.
//
// Sweeps also run distributed (internal/dist): jobs are partitioned across
// worker processes by a deterministic shard key — the FNV-1a hash of each
// variant's canonical identity (scenarios.Job.Key), a pure function of the
// variant, so every process derives the same partition without coordination —
// and a coordinator (cmd/sweepd) merges the workers' NDJSON streams back
// through the ordered-sink path, deduplicated by key and folded through
// Accumulator.Merge, producing output byte-identical to a single process.
// Dead or stalled workers are re-queued with the proved prefix of their shard
// seeded into the replacement's result cache, so fault recovery re-simulates
// only what was genuinely lost; the SIGKILL chaos test proves the merged
// stream survives worker loss unchanged.
//
// See README.md for the package layout, the Engine / parameter-sweep API and
// the build-and-test workflow.  The benchmarks in bench_test.go regenerate
// every table and figure of the thesis' evaluation.
package repro
