// Package repro is a Go reproduction of "System Safety as an Emergent
// Property in Composite Systems" (Jennifer A. Black, Carnegie Mellon
// University, 2009).
//
// The library implements the thesis' three contributions — the formal
// framework for composable and emergent safety goals, Indirect Control Path
// Analysis (ICPA), and hierarchical run-time safety-goal monitoring —
// together with every substrate the evaluation depends on: a past-time
// temporal-logic engine, KAOS-style goals and agents, traditional hazard
// analysis baselines (PHA, FTA, FMEA), a fixed-step simulation kernel, the
// Chapter 4 distributed elevator and the Chapter 5 semi-autonomous vehicle
// with its ten evaluation scenarios.
//
// See README.md for the package layout, the batch Runner / parameter-sweep
// API and the build-and-test workflow.  The benchmarks in bench_test.go
// regenerate every table and figure of the thesis' evaluation.
package repro
