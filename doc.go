// Package repro is a Go reproduction of "System Safety as an Emergent
// Property in Composite Systems" (Jennifer A. Black, Carnegie Mellon
// University, 2009).
//
// The library implements the thesis' three contributions — the formal
// framework for composable and emergent safety goals, Indirect Control Path
// Analysis (ICPA), and hierarchical run-time safety-goal monitoring —
// together with every substrate the evaluation depends on: a past-time
// temporal-logic engine, KAOS-style goals and agents, traditional hazard
// analysis baselines (PHA, FTA, FMEA), a fixed-step simulation kernel, the
// Chapter 4 distributed elevator and the Chapter 5 semi-autonomous vehicle
// with its ten evaluation scenarios.
//
// State is slot-indexed: each scenario run owns a temporal.Schema (an
// interned name → slot symbol table) and a temporal.State is a dense
// register file over it, so a bus commit is a slice copy, a snapshot is a
// slice clone, and goal monitors compiled with temporal.CompileWithSchema
// evaluate their atoms as array loads — no string hashing anywhere on the
// per-step path.  Components address signals through typed handles
// (sim.Bus.NumVar/BoolVar/StringVar); the name-keyed bus and state APIs
// remain as the schema-resolving compatibility path, and differential tests
// prove the slot-indexed and string-keyed evaluations produce identical
// detections across the full evaluation.
//
// Monitoring is evaluated as one composed artifact: temporal.Program
// compiles every goal and subgoal formula of a monitor suite into a single
// flat, topologically ordered node array with common subexpressions
// hash-consed away, so each shared atom and subformula is evaluated exactly
// once per observed state however many formulas reference it (the vehicle
// plan's 49 formulas collapse from 360 node references to 159 nodes).
// monitor.CompiledSuite feeds the program's per-formula verdicts into
// lightweight interval recorders and reuses the Hierarchy / Classify /
// Report machinery unchanged; Reset makes one compiled program serve run
// after run, which is how a sweep worker monitors every variant it executes
// with a single compilation.  The per-monitor (scenarios.BuildSuite) and
// string-keyed (temporal.CompileReference) paths remain as reference
// implementations that differential tests compare the program against.
//
// Scenario evaluation is built around the streaming scenarios.Engine: jobs
// are pulled lazily from a JobSource (Family and Sweep expose generator
// forms, so a parameter grid of any size never materializes a job slice),
// each Result is pushed to a ResultSink as it completes — in source order by
// default — and a trace-retention policy (KeepTrace or SummaryOnly) decides
// whether sweep memory is O(variants) or O(workers).  Runs are bounded and
// cancelled through a context.Context; cancellation drains in-flight work
// and leaves a valid partial aggregate in the Accumulator sink.  The batch
// entry points (scenarios.Runner, RunAll, RunSweep) remain as thin
// compatibility wrappers over the Engine.
//
// See README.md for the package layout, the Engine / parameter-sweep API and
// the build-and-test workflow.  The benchmarks in bench_test.go regenerate
// every table and figure of the thesis' evaluation.
package repro
