package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("bad flags should be an error")
	}
	if err := run([]string{"-workers", "0"}, io.Discard); err == nil {
		t.Error("-workers 0 should be rejected")
	}
	if err := run([]string{"-sweep-size", "enormous"}, io.Discard); err == nil {
		t.Error("unknown -sweep-size should be rejected")
	}
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Error("unknown scenario number should be rejected")
	}
	if err := run([]string{"-worker", "/definitely/not/a/binary"}, io.Discard); err == nil {
		t.Error("an unstartable worker binary should fail the run")
	}
}

// TestRunDistributedSummary drives the full command path against real worker
// processes: a 2-worker distributed family sweep whose rendered summary must
// match the single-process `scenarios -sweep` summary exactly.
func TestRunDistributedSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice across processes")
	}
	bin := filepath.Join(t.TempDir(), "scenarios")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/scenarios")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building scenarios worker: %v\n%s", err, out)
	}

	single := exec.Command(bin, "-sweep", "-n", "7")
	var want bytes.Buffer
	single.Stdout = &want
	if err := single.Run(); err != nil {
		t.Fatalf("single-process sweep: %v", err)
	}

	var got bytes.Buffer
	if err := run([]string{"-worker", bin, "-workers", "2", "-n", "7"}, &got); err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("distributed summary differs from single-process summary:\n--- single ---\n%s--- distributed ---\n%s", want.String(), got.String())
	}
	if !strings.Contains(got.String(), "Sweep: 12 runs") {
		t.Errorf("summary should cover the 12-variant family, got:\n%s", got.String())
	}
}

// TestRunResilienceFlagValidation pins the new transport/resilience flags.
func TestRunResilienceFlagValidation(t *testing.T) {
	if err := run([]string{"-max-attempts", "0"}, io.Discard); err == nil {
		t.Error("-max-attempts 0 should be rejected")
	}
	if err := run([]string{"-transport", "carrier-pigeon"}, io.Discard); err == nil {
		t.Error("an unknown -transport should be rejected")
	}
	if err := run([]string{"-transport", "http"}, io.Discard); err == nil {
		t.Error("-transport http without -hosts should be rejected")
	}
	if err := run([]string{"-transport", "http", "-hosts", " , "}, io.Discard); err == nil {
		t.Error("-hosts with no usable addresses should be rejected")
	}
	if err := run([]string{"-chaos", "meteor-strike"}, io.Discard); err == nil {
		t.Error("an unknown -chaos kind should be rejected")
	}
}

// expectedSummary renders the summary the command must print for a complete
// family sweep, from an in-process evaluation of the same selection.
func expectedSummary(t *testing.T) string {
	t.Helper()
	source, err := scenarios.SweepSourceFor("default", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	engine := scenarios.NewEngine(scenarios.WithRetention(scenarios.SummaryOnly))
	var acc scenarios.Accumulator
	if err := engine.Stream(context.Background(), source(), &acc); err != nil {
		t.Fatal(err)
	}
	rep := dist.NewAggregateReport(&acc)
	return fmt.Sprintf("Sweep: %d runs, %d collisions, %d early terminations\nAggregate: %s\nInterpretation: %s\n",
		rep.Runs, rep.Collisions, rep.EarlyTerminations, rep.Aggregate, rep.Aggregate.CompositionEvidence())
}

// sweepworkerServer mounts the scenario-7 worker daemon handler on loopback.
func sweepworkerServer(t *testing.T) *httptest.Server {
	t.Helper()
	source, err := scenarios.SweepSourceFor("default", 7, false)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle(dist.DefaultShardPath, &dist.WorkerServer{Source: source})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestRunHTTPDistributedSummary drives the full command path over the HTTP
// transport against a loopback worker daemon: the rendered summary must be
// exactly the single-process one.
func TestRunHTTPDistributedSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice, once over loopback HTTP")
	}
	srv := sweepworkerServer(t)
	var got bytes.Buffer
	if err := run([]string{"-transport", "http", "-hosts", srv.URL, "-workers", "3", "-n", "7"}, &got); err != nil {
		t.Fatalf("http distributed sweep: %v", err)
	}
	if want := expectedSummary(t); got.String() != want {
		t.Errorf("http summary differs from single-process summary:\n--- single ---\n%s--- http ---\n%s", want, got.String())
	}
}

// TestRunChaosHTTPSummary turns on the full fault menu over the HTTP
// transport; with budget to retry, the summary must still come out exactly
// single-process — the -chaos acceptance path through the CLI.
func TestRunChaosHTTPSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family under chaos over loopback HTTP")
	}
	srv := sweepworkerServer(t)
	// The race detector slows honest workers ~10×; a too-tight stall budget
	// would kill them and burn the attempt budget on false positives.
	stall := "2s"
	if raceEnabled {
		stall = "20s"
	}
	var got bytes.Buffer
	err := run([]string{
		"-transport", "http", "-hosts", srv.URL, "-workers", "3", "-n", "7",
		"-chaos", "all", "-chaos-seed", "2",
		"-max-attempts", "4", "-backoff", "1ms", "-stall-timeout", stall,
	}, &got)
	if err != nil {
		t.Fatalf("chaos sweep: %v", err)
	}
	if want := expectedSummary(t); got.String() != want {
		t.Errorf("chaos summary differs from single-process summary:\n--- single ---\n%s--- chaos ---\n%s", want, got.String())
	}
}

// TestRunAllowPartialSummary points one of three shards at a dead host: with
// -allow-partial the run must succeed and the summary must carry the PARTIAL
// provenance naming the dead shard.
func TestRunAllowPartialSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two live shards of the scenario-7 family over loopback HTTP")
	}
	srv := sweepworkerServer(t)
	var got bytes.Buffer
	err := run([]string{
		"-transport", "http", "-hosts", srv.URL + ",127.0.0.1:1", "-workers", "3", "-n", "7",
		"-allow-partial", "-max-attempts", "2", "-backoff", "1ms",
	}, &got)
	if err != nil {
		t.Fatalf("-allow-partial must absorb the dead host, got: %v", err)
	}
	out := got.String()
	if !strings.Contains(out, "PARTIAL:") {
		t.Errorf("summary of a degraded run should be flagged PARTIAL, got:\n%s", out)
	}
	if !strings.Contains(out, "shard 1/3:") {
		t.Errorf("the degraded summary should name dead shard 1, got:\n%s", out)
	}
	if !strings.Contains(out, "2 attempt(s)") {
		t.Errorf("the degraded summary should report the spent budget, got:\n%s", out)
	}
}
