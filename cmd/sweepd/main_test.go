package main

import (
	"bytes"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("bad flags should be an error")
	}
	if err := run([]string{"-workers", "0"}, io.Discard); err == nil {
		t.Error("-workers 0 should be rejected")
	}
	if err := run([]string{"-sweep-size", "enormous"}, io.Discard); err == nil {
		t.Error("unknown -sweep-size should be rejected")
	}
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Error("unknown scenario number should be rejected")
	}
	if err := run([]string{"-worker", "/definitely/not/a/binary"}, io.Discard); err == nil {
		t.Error("an unstartable worker binary should fail the run")
	}
}

// TestRunDistributedSummary drives the full command path against real worker
// processes: a 2-worker distributed family sweep whose rendered summary must
// match the single-process `scenarios -sweep` summary exactly.
func TestRunDistributedSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 12-variant scenario-7 family twice across processes")
	}
	bin := filepath.Join(t.TempDir(), "scenarios")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/scenarios")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building scenarios worker: %v\n%s", err, out)
	}

	single := exec.Command(bin, "-sweep", "-n", "7")
	var want bytes.Buffer
	single.Stdout = &want
	if err := single.Run(); err != nil {
		t.Fatalf("single-process sweep: %v", err)
	}

	var got bytes.Buffer
	if err := run([]string{"-worker", bin, "-workers", "2", "-n", "7"}, &got); err != nil {
		t.Fatalf("distributed sweep: %v", err)
	}
	if got.String() != want.String() {
		t.Errorf("distributed summary differs from single-process summary:\n--- single ---\n%s--- distributed ---\n%s", want.String(), got.String())
	}
	if !strings.Contains(got.String(), "Sweep: 12 runs") {
		t.Errorf("summary should cover the 12-variant family, got:\n%s", got.String())
	}
}
