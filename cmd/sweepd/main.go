// Command sweepd coordinates a distributed parameter sweep: it drives N
// shard workers — local `scenarios -shard i/n -stream` processes, or remote
// sweepworker HTTP daemons — and merges their NDJSON result streams back
// into the single-process output contract.  The merged stream (and the
// final aggregate) is byte-identical to `scenarios -sweep -stream` over the
// same grid, including when workers die mid-sweep: dead shards are
// re-queued with seeded exponential backoff, replacement workers are seeded
// with every already-proved variant, and duplicate deliveries are dropped
// by variant key.
//
// Usage:
//
//	sweepd [-transport exec|http] [-worker path] [-hosts h1,h2,...]
//	       [-workers n] [-sweep-size s] [-n number] [-corrected]
//	       [-worker-pool n] [-stall-timeout d] [-max-attempts k]
//	       [-backoff d] [-backoff-max d] [-seed s] [-allow-partial]
//	       [-chaos kinds] [-chaos-seed s] [-timeout d] [-stream]
//
// -transport exec (default) spawns local worker processes (-worker names
// the scenarios binary, resolved via PATH).  -transport http drives the
// sweepworker daemons listed in -hosts; shard i goes to host i mod len.
// Each shard may consume up to -max-attempts workers; -allow-partial turns
// an exhausted shard into a partial aggregate (flagged, with a per-shard
// completion map) instead of a failed sweep.  -chaos wraps the transport in
// seeded deterministic fault injection (dist.FaultTransport): a comma list
// of fault kinds or "all", replayable exactly with the same -chaos-seed.
// Without -stream, only the final "Sweep:" summary lines are printed,
// matching `scenarios -sweep`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	transport := fs.String("transport", "exec", "worker transport: exec (local child processes) or http (remote sweepworker daemons)")
	worker := fs.String("worker", "scenarios", "exec transport: path to the scenarios worker binary")
	hosts := fs.String("hosts", "", "http transport: comma-separated sweepworker hosts (host:port or http://host:port)")
	workers := fs.Int("workers", 3, "number of workers (= shard count)")
	sweepSize := fs.String("sweep-size", "default", "sweep grid preset, as in scenarios -sweep-size")
	number := fs.Int("n", 0, "sweep only the given thesis scenario's family (0 = all)")
	corrected := fs.Bool("corrected", false, "ablation: sweep only the corrected configuration")
	workerPool := fs.Int("worker-pool", 0, "per-worker engine pool size, passed through as scenarios -workers (0 = worker default)")
	stallTimeout := fs.Duration("stall-timeout", 2*time.Minute, "kill and re-queue a worker silent for this long (0 disables)")
	maxAttempts := fs.Int("max-attempts", 3, "workers (first + replacements) allowed per shard before it fails")
	backoff := fs.Duration("backoff", 500*time.Millisecond, "base delay before re-queuing a failed shard; doubles per attempt with seeded jitter (0 = immediate)")
	backoffMax := fs.Duration("backoff-max", 15*time.Second, "cap on the exponential re-queue backoff")
	seed := fs.Int64("seed", 1, "seed for the backoff jitter (and -chaos, unless -chaos-seed is set)")
	allowPartial := fs.Bool("allow-partial", false, "degrade gracefully: retire a shard that exhausts its budget and emit a partial aggregate with a completion map instead of failing the sweep")
	chaos := fs.String("chaos", "", "inject deterministic faults: comma-separated kinds (spawn-refusal, drop, corrupt, truncate, duplicate, stall, slow) or \"all\" (empty disables)")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for -chaos fault injection (0 = use -seed); the same seed replays the same faults")
	timeout := fs.Duration("timeout", 0, "bound the whole distributed sweep (0 = no bound)")
	stream := fs.Bool("stream", false, "emit the merged NDJSON stream (run lines in source order, then the aggregate line) instead of the rendered summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}
	if *maxAttempts < 1 {
		return fmt.Errorf("-max-attempts must be at least 1, got %d", *maxAttempts)
	}

	// The coordinator enumerates the grid itself; workers enumerate the same
	// grid from the same selection (argv flags for exec workers, daemon
	// startup flags for http workers).
	source, err := scenarios.SweepSourceFor(*sweepSize, *number, *corrected)
	if err != nil {
		return err
	}

	tr, err := buildTransport(*transport, *worker, *hosts, *sweepSize, *number, *corrected, *workerPool)
	if err != nil {
		return err
	}
	if *chaos != "" {
		menu, err := parseChaosMenu(*chaos)
		if err != nil {
			return err
		}
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		tr = &dist.FaultTransport{Inner: tr, Seed: cs, Menu: menu}
	}

	coord, err := dist.New(dist.Options{
		Workers:         *workers,
		Transport:       tr,
		StallTimeout:    *stallTimeout,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *backoff,
		RetryBackoffMax: *backoffMax,
		Seed:            *seed,
		AllowPartial:    *allowPartial,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sink scenarios.ResultSink = scenarios.SinkFunc(func(scenarios.StreamResult) error { return nil })
	if *stream {
		enc := json.NewEncoder(w)
		sink = scenarios.SinkFunc(func(sr scenarios.StreamResult) error {
			return enc.Encode(dist.NewRunReport(sr))
		})
	}

	outcome, err := coord.Run(ctx, source(), sink)
	if err != nil {
		return err
	}
	rep := outcome.Report()
	if *stream {
		return json.NewEncoder(w).Encode(rep)
	}
	fmt.Fprintf(w, "Sweep: %d runs, %d collisions, %d early terminations\n",
		rep.Runs, rep.Collisions, rep.EarlyTerminations)
	fmt.Fprintf(w, "Aggregate: %s\n", rep.Aggregate)
	fmt.Fprintf(w, "Interpretation: %s\n", rep.Aggregate.CompositionEvidence())
	if outcome.Partial {
		// Extra provenance lines only on degraded runs, so a complete sweep's
		// summary stays identical to `scenarios -sweep`.
		fmt.Fprintf(w, "PARTIAL: the aggregate covers only the shards that completed\n")
		for shard, c := range outcome.Shards {
			if !c.Complete {
				fmt.Fprintf(w, "  shard %d/%d: %d/%d variants after %d attempt(s): %s\n",
					shard, len(outcome.Shards), c.Done, c.Total, c.Attempts, c.Error)
			}
		}
	}
	return nil
}

// buildTransport resolves the -transport selection.
func buildTransport(kind, worker, hosts, sweepSize string, number int, corrected bool, workerPool int) (dist.Transport, error) {
	switch kind {
	case "exec":
		// Build the worker argv from the exact flags that shape the
		// coordinator's own enumeration, so both sides agree on the grid.
		argv := []string{worker, "-sweep", "-sweep-size", sweepSize, "-stream"}
		if number != 0 {
			argv = append(argv, "-n", strconv.Itoa(number))
		}
		if corrected {
			argv = append(argv, "-corrected")
		}
		if workerPool > 0 {
			argv = append(argv, "-workers", strconv.Itoa(workerPool))
		}
		return &dist.ExecTransport{Argv: argv, Stderr: os.Stderr}, nil
	case "http":
		if hosts == "" {
			return nil, fmt.Errorf("-transport http needs -hosts (comma-separated sweepworker addresses)")
		}
		var list []string
		for _, h := range strings.Split(hosts, ",") {
			if h = strings.TrimSpace(h); h != "" {
				list = append(list, h)
			}
		}
		if len(list) == 0 {
			return nil, fmt.Errorf("-hosts contained no usable addresses: %q", hosts)
		}
		return &dist.HTTPTransport{Hosts: list}, nil
	default:
		return nil, fmt.Errorf("unknown -transport %q (want exec or http)", kind)
	}
}

// parseChaosMenu resolves the -chaos flag into a fault menu.
func parseChaosMenu(spec string) ([]dist.FaultKind, error) {
	if spec == "all" {
		return dist.AllFaultKinds(), nil
	}
	var menu []dist.FaultKind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, err := dist.ParseFaultKind(name)
		if err != nil {
			return nil, fmt.Errorf("-chaos: %w", err)
		}
		menu = append(menu, k)
	}
	if len(menu) == 0 {
		return nil, fmt.Errorf("-chaos contained no fault kinds: %q", spec)
	}
	return menu, nil
}
