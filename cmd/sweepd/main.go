// Command sweepd coordinates a distributed parameter sweep: it spawns N
// worker processes — each the ordinary scenarios binary running `-shard i/n
// -stream` — and merges their NDJSON result streams back into the
// single-process output contract.  The merged stream (and the final
// aggregate) is byte-identical to `scenarios -sweep -stream` over the same
// grid, including when workers are killed mid-sweep: dead shards are
// re-queued, replacement workers are seeded with every already-proved
// variant, and duplicate deliveries are dropped by variant key.
//
// Usage:
//
//	sweepd [-worker path] [-workers n] [-sweep-size s] [-n number]
//	       [-corrected] [-worker-pool n] [-stall-timeout d] [-retries k]
//	       [-timeout d] [-stream]
//
// -worker names the scenarios binary (default "scenarios", resolved via
// PATH).  -workers is the shard count.  Without -stream, only the final
// "Sweep:" summary lines are printed, matching `scenarios -sweep`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	worker := fs.String("worker", "scenarios", "path to the scenarios worker binary")
	workers := fs.Int("workers", 3, "number of worker processes (= shard count)")
	sweepSize := fs.String("sweep-size", "default", "sweep grid preset, as in scenarios -sweep-size")
	number := fs.Int("n", 0, "sweep only the given thesis scenario's family (0 = all)")
	corrected := fs.Bool("corrected", false, "ablation: sweep only the corrected configuration")
	workerPool := fs.Int("worker-pool", 0, "per-worker engine pool size, passed through as scenarios -workers (0 = worker default)")
	stallTimeout := fs.Duration("stall-timeout", 2*time.Minute, "kill and re-queue a worker silent for this long (0 disables)")
	retries := fs.Int("retries", 2, "replacement workers allowed per shard before the sweep fails")
	timeout := fs.Duration("timeout", 0, "bound the whole distributed sweep (0 = no bound)")
	stream := fs.Bool("stream", false, "emit the merged NDJSON stream (run lines in source order, then the aggregate line) instead of the rendered summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", *workers)
	}

	// The coordinator and every worker must enumerate the same grid; build
	// the worker argv from the exact flags that shape the local source below.
	argv := []string{*worker, "-sweep", "-sweep-size", *sweepSize, "-stream"}
	if *number != 0 {
		argv = append(argv, "-n", strconv.Itoa(*number))
	}
	if *corrected {
		argv = append(argv, "-corrected")
	}
	if *workerPool > 0 {
		argv = append(argv, "-workers", strconv.Itoa(*workerPool))
	}

	src, err := sweepSource(*sweepSize, *number, *corrected)
	if err != nil {
		return err
	}

	coord, err := dist.New(dist.Options{
		Workers:      *workers,
		Transport:    &dist.ExecTransport{Argv: argv, Stderr: os.Stderr},
		StallTimeout: *stallTimeout,
		MaxRetries:   *retries,
	})
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var sink scenarios.ResultSink = scenarios.SinkFunc(func(scenarios.StreamResult) error { return nil })
	if *stream {
		enc := json.NewEncoder(w)
		sink = scenarios.SinkFunc(func(sr scenarios.StreamResult) error {
			return enc.Encode(dist.NewRunReport(sr))
		})
	}

	acc, err := coord.Run(ctx, src, sink)
	if err != nil {
		return err
	}
	rep := dist.NewAggregateReport(acc)
	if *stream {
		return json.NewEncoder(w).Encode(rep)
	}
	fmt.Fprintf(w, "Sweep: %d runs, %d collisions, %d early terminations\n",
		rep.Runs, rep.Collisions, rep.EarlyTerminations)
	fmt.Fprintf(w, "Aggregate: %s\n", rep.Aggregate)
	fmt.Fprintf(w, "Interpretation: %s\n", rep.Aggregate.CompositionEvidence())
	return nil
}

// sweepSource builds the coordinator's own enumeration of the grid — the
// same narrowing rules as cmd/scenarios, so both sides agree on the stream.
func sweepSource(size string, number int, corrected bool) (scenarios.JobSource, error) {
	sw, err := scenarios.SweepBySize(size)
	if err != nil {
		return nil, err
	}
	if corrected {
		for i := range sw.Families {
			sw.Families[i].OptionSets = []scenarios.Options{{CorrectDefects: true}}
		}
	}
	if number != 0 {
		var kept []scenarios.Family
		for _, f := range sw.Families {
			if f.Base.Number == number {
				kept = append(kept, f)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("no scenario numbered %d", number)
		}
		sw.Families = kept
	}
	return sw.Source(), nil
}
