//go:build race

package main

// raceEnabled reports whether this test binary was built with the race
// detector; timing-sensitive budgets scale themselves up when it is on.
const raceEnabled = true
