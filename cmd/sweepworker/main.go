// Command sweepworker is the HTTP worker daemon of a distributed sweep: a
// long-running stdlib net/http server that evaluates shards on demand.  A
// coordinator (cmd/sweepd with -transport http, or any dist.HTTPTransport)
// POSTs a JSON dist.ShardSpec — shard index, total, and the already-proved
// results to seed the engine's cache with — to /shard, and the response
// streams back the exact `scenarios -stream` NDJSON protocol as a chunked
// body: one run line per variant of the shard, flushed as produced, then the
// aggregate trailer line.  /healthz answers readiness probes.
//
// The daemon and its coordinator must agree on the sweep: both sides resolve
// the same -sweep-size/-n/-corrected selection through
// scenarios.SweepSourceFor, which is the whole coordination protocol — the
// shard partition is a pure function of the variant keys.  A mismatched
// worker reports variants the coordinator never enumerated; the coordinator
// poisons those attempts and, once the shard's budget is exhausted, fails
// the shard with the alien variant named.
//
// Usage:
//
//	sweepworker [-addr host:port] [-sweep-size s] [-n number] [-corrected]
//	            [-workers n]
//
// The resolved listen address is printed on stdout once the socket is bound
// (useful with -addr 127.0.0.1:0), then the daemon serves until killed.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("sweepworker", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8571", "listen address (host:port; port 0 picks a free port, printed on stdout)")
	sweepSize := fs.String("sweep-size", "default", "sweep grid preset, as in scenarios -sweep-size")
	number := fs.Int("n", 0, "serve only the given thesis scenario's family (0 = all)")
	corrected := fs.Bool("corrected", false, "ablation: serve only the corrected configuration")
	workers := fs.Int("workers", 0, "engine pool size per shard request (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	handler, err := newHandler(*sweepSize, *number, *corrected, *workers)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("sweepworker: listen %s: %w", *addr, err)
	}
	fmt.Fprintf(w, "sweepworker: serving %q sweep shards on http://%s%s\n",
		*sweepSize, ln.Addr(), dist.DefaultShardPath)
	return (&http.Server{Handler: handler}).Serve(ln)
}

// newHandler builds the daemon's mux: the shard evaluator plus a readiness
// probe, split out so tests can mount it on httptest servers.
func newHandler(sweepSize string, number int, corrected bool, workers int) (http.Handler, error) {
	source, err := scenarios.SweepSourceFor(sweepSize, number, corrected)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle(dist.DefaultShardPath, &dist.WorkerServer{Source: source, Workers: workers})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux, nil
}
