package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/dist"
)

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Error("bad flags should be an error")
	}
	if err := run([]string{"-sweep-size", "enormous"}, io.Discard); err == nil {
		t.Error("unknown -sweep-size should be rejected")
	}
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Error("unknown scenario number should be rejected")
	}
	if err := run([]string{"-addr", "definitely-not-an-address"}, io.Discard); err == nil {
		t.Error("an unbindable -addr should fail the daemon")
	}
}

// TestHandlerServesShardAndHealth mounts the daemon's handler on a loopback
// server and checks both endpoints: /healthz answers probes, /shard streams
// the worker protocol for a valid spec and rejects non-POSTs.
func TestHandlerServesShardAndHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluates one shard of the scenario-7 family")
	}
	handler, err := newHandler("default", 7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("/healthz = %s %q, want 200 ok", resp.Status, body)
	}

	if resp, err := http.Get(srv.URL + dist.DefaultShardPath); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %s, want 405", dist.DefaultShardPath, resp.Status)
		}
	}

	spec, _ := json.Marshal(dist.ShardSpec{Index: 0, Total: 2})
	resp, err = http.Post(srv.URL+dist.DefaultShardPath, "application/json", strings.NewReader(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shard request = %s, want 200", resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("expected run lines plus a trailer, got %d line(s)", len(lines))
	}
	for i, line := range lines {
		_, ok, err := dist.ParseResultLine([]byte(line))
		if err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
		if wantRun := i < len(lines)-1; ok != wantRun {
			t.Errorf("line %d: run=%v, want %v (trailer must be last and only last)", i, ok, wantRun)
		}
	}
}
