// Command elevator runs the Chapter 4 distributed-elevator scenarios with
// hierarchical safety-goal monitoring and prints the violations and their
// hit / false-positive / false-negative classification.
//
// Usage:
//
//	elevator [-scenario name] [-icpa] [-v]
//
// Without flags it runs every scenario.  With -icpa it additionally prints
// the ICPA tables of Maintain[DoorClosedOrElevatorStopped] (Tables 4.1–4.4)
// and Maintain[ElevatorBelowHoistwayUpperLimit].
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/elevator"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("elevator", flag.ContinueOnError)
	scenarioName := fs.String("scenario", "", "run only the named scenario (default: all)")
	showICPA := fs.Bool("icpa", false, "print the elevator ICPA tables before running")
	verbose := fs.Bool("v", false, "print every detection, not just the summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showICPA {
		fmt.Println(elevator.DoorDriveICPA().Render())
		fmt.Println(elevator.HoistwayICPA().Render())
	}

	ran := 0
	for _, sc := range elevator.Scenarios() {
		if *scenarioName != "" && sc.Name != *scenarioName {
			continue
		}
		ran++
		res := elevator.Run(sc)
		fmt.Printf("=== Scenario %q: %s\n", sc.Name, sc.Description)
		fmt.Printf("    simulated %d states; final position %.2f m, speed %.3f m/s\n",
			res.Trace.Len(),
			res.Trace.Last().Number(elevator.SigElevatorPosition),
			res.Trace.Last().Number(elevator.SigElevatorSpeed))
		fmt.Printf("    classification: %s\n", res.Summary)
		for _, row := range res.Suite.Report() {
			fmt.Printf("    %s\n", row)
		}
		if *verbose {
			for goalName, ds := range res.Detections {
				for _, d := range ds {
					fmt.Printf("    [%s] %s at %s (%s)\n", d.Kind, goalName, d.Interval, d.Location)
				}
			}
		}
		fmt.Println()
	}
	if ran == 0 {
		return fmt.Errorf("no scenario named %q", *scenarioName)
	}
	return nil
}
