package main

import "testing"

func TestRunSingleScenario(t *testing.T) {
	if err := run([]string{"-scenario", "nominal", "-v"}); err != nil {
		t.Fatalf("run(nominal): %v", err)
	}
}

func TestRunWithICPA(t *testing.T) {
	if err := run([]string{"-scenario", "door-defect", "-icpa"}); err != nil {
		t.Fatalf("run(door-defect, -icpa): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-scenario", "does-not-exist"}); err == nil {
		t.Fatal("unknown scenario should be an error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flags should be an error")
	}
}
