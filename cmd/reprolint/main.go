// Command reprolint runs the repro static analyzer suite (internal/lint) over
// the whole module and reports every invariant violation as
//
//	file:line: [analyzer] message
//
// with the file path relative to the module root.  It exits 0 when the tree is
// clean, 1 when any analyzer reports a finding, and 2 when the module cannot
// be loaded or the flags are invalid.
//
// Usage:
//
//	go run ./cmd/reprolint ./...
//	go run ./cmd/reprolint -only hotpathalloc,determinism ./...
//	go run ./cmd/reprolint -json ./...
//
// The package pattern argument is accepted for familiarity but the suite
// always analyzes the entire module containing the working directory: the
// invariants it proves are whole-program properties (a hot path crosses
// packages, a Reset method and its callers live apart), so a partial load
// would be unsound.
//
// -json switches output to newline-delimited JSON, one object per finding:
//
//	{"file":"internal/core/tactics.go","line":151,"col":36,"analyzer":"slotbind","message":"..."}
//
// -only restricts the run to a comma-separated subset of analyzers; unknown
// names are an error listing the available suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("reprolint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	jsonOut := fs.Bool("json", false, "emit newline-delimited JSON instead of text diagnostics")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers in the suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: reprolint [-json] [-only a,b] [-list] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	root, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	prog, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}

	var names []string
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
	}
	diags, err := lint.RunAll(prog, names...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		fmt.Fprintln(os.Stderr, "available analyzers:")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		return 2
	}

	if err := report(os.Stdout, diags, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// jsonDiagnostic is the NDJSON shape of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func report(w io.Writer, diags []lint.Diagnostic, asJSON bool) error {
	if !asJSON {
		for _, d := range diags {
			if _, err := fmt.Fprintln(w, d.String()); err != nil {
				return err
			}
		}
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}

// moduleRoot walks up from dir to the nearest directory containing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
