package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func diag(file string, line, col int, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestReportText(t *testing.T) {
	var b strings.Builder
	diags := []lint.Diagnostic{
		diag("internal/a.go", 3, 1, "slotbind", "first"),
		diag("internal/b.go", 9, 5, "determinism", "second"),
	}
	if err := report(&b, diags, false); err != nil {
		t.Fatal(err)
	}
	want := "internal/a.go:3: [slotbind] first\ninternal/b.go:9: [determinism] second\n"
	if b.String() != want {
		t.Fatalf("text output = %q, want %q", b.String(), want)
	}
}

func TestReportNDJSON(t *testing.T) {
	var b strings.Builder
	diags := []lint.Diagnostic{
		diag("internal/a.go", 3, 1, "slotbind", "first"),
		diag("internal/b.go", 9, 5, "hotpathalloc", "second"),
	}
	if err := report(&b, diags, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d NDJSON lines, want %d", len(lines), len(diags))
	}
	for i, line := range lines {
		var got jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		want := jsonDiagnostic{
			File:     diags[i].Pos.Filename,
			Line:     diags[i].Pos.Line,
			Col:      diags[i].Pos.Column,
			Analyzer: diags[i].Analyzer,
			Message:  diags[i].Message,
		}
		if got != want {
			t.Errorf("line %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestModuleRoot(t *testing.T) {
	dir := t.TempDir()
	nested := filepath.Join(dir, "a", "b")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := moduleRoot(nested)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := filepath.EvalSymlinks(dir); root != dir && root != want {
		t.Fatalf("moduleRoot = %q, want %q", root, dir)
	}
}

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
}
