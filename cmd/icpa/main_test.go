package main

import "testing"

func TestRunElevatorAnalyses(t *testing.T) {
	if err := run([]string{"-system", "elevator", "-verify", "-lessons"}); err != nil {
		t.Fatalf("run(elevator): %v", err)
	}
}

func TestRunVehicleAnalyses(t *testing.T) {
	if err := run([]string{"-system", "vehicle", "-goal", "AutoAccel"}); err != nil {
		t.Fatalf("run(vehicle): %v", err)
	}
}

func TestRunPatternsAndHazards(t *testing.T) {
	if err := run([]string{"-system", "elevator", "-patterns", "-hazard"}); err != nil {
		t.Fatalf("run(patterns+hazard): %v", err)
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if err := run([]string{"-system", "spaceship"}); err == nil {
		t.Fatal("unknown system should be an error")
	}
}

func TestRunUnknownGoal(t *testing.T) {
	if err := run([]string{"-system", "elevator", "-goal", "NoSuchGoal"}); err == nil {
		t.Fatal("unknown goal filter should be an error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flags should be an error")
	}
}
