// Command icpa prints the Indirect Control Path Analyses, realizability
// pattern tables and baseline hazard analyses reproduced from the thesis:
//
//   - the elevator analyses of Tables 4.1–4.4 and the hoistway-limit goal
//     (-system elevator),
//   - the semi-autonomous vehicle analyses of Appendix C (-system vehicle),
//   - Table 4.5 and the Appendix B realizability pattern catalogue
//     (-patterns),
//   - the Figure 2.2 fault tree and Figure 2.3 FMEA baselines (-hazard).
//
// Usage:
//
//	icpa [-system elevator|vehicle|all] [-goal name] [-patterns] [-hazard] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/elevator"
	"repro/internal/goals"
	"repro/internal/hazard"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icpa", flag.ContinueOnError)
	system := fs.String("system", "all", "which system to analyse: elevator, vehicle or all")
	goalName := fs.String("goal", "", "print only the analysis of the named goal")
	patterns := fs.Bool("patterns", false, "print Table 4.5 and the Appendix B realizability pattern tables")
	hazards := fs.Bool("hazard", false, "print the Figure 2.2 fault tree, Figure 2.3 FMEA and the vehicle PHA")
	verify := fs.Bool("verify", false, "print realizability check results for every derived subgoal")
	lessons := fs.Bool("lessons", false, "print the design lessons from applying ICPA to the vehicle (§5.3.2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var analyses []*core.Analysis
	switch *system {
	case "elevator":
		analyses = elevatorAnalyses()
	case "vehicle":
		analyses = scenarios.AppendixCAnalyses()
	case "all":
		analyses = append(elevatorAnalyses(), scenarios.AppendixCAnalyses()...)
	default:
		return fmt.Errorf("unknown system %q (want elevator, vehicle or all)", *system)
	}

	printed := 0
	for _, a := range analyses {
		if *goalName != "" && !strings.Contains(a.Goal.Name, *goalName) {
			continue
		}
		printed++
		fmt.Println(a.Render())
		if *verify {
			fmt.Println("Subgoal realizability:")
			for name, r := range a.CheckRealizability() {
				fmt.Printf("  %-60s %s\n", name, r)
			}
			fmt.Println()
		}
	}
	if *goalName != "" && printed == 0 {
		return fmt.Errorf("no analysed goal matches %q", *goalName)
	}

	if *patterns {
		fmt.Println("Table 4.5: goal controllability and observability requirements for A => B")
		for _, t := range core.Table4_5() {
			fmt.Println(t.Render())
		}
		fmt.Println("Appendix B: goal realizability patterns and alternative goals")
		for _, t := range core.AppendixBTables() {
			fmt.Println(t.Render())
		}
	}

	if *hazards {
		tree := hazard.VehicleUnintendedAccelerationTree()
		fmt.Println(tree.Render())
		fmt.Printf("Top event probability (independent basic events): %.3e\n", tree.TopProbability())
		fmt.Println("Minimal cut sets:")
		for _, cs := range tree.MinimalCutSets() {
			fmt.Printf("  %s\n", cs)
		}
		fmt.Println()
		fmt.Println(hazard.VehicleRadarFMEA().Render())
		fmt.Println(hazard.VehiclePHA().Render())
	}

	if *lessons {
		fmt.Println("Lessons from applying ICPA to the semi-autonomous vehicle (§5.3.2, §6.1):")
		for _, l := range scenarios.LessonsFromICPA() {
			fmt.Printf("  - %s\n", l)
		}
	}
	return nil
}

func elevatorAnalyses() []*core.Analysis {
	analyses := []*core.Analysis{elevator.DoorDriveICPA(), elevator.HoistwayICPA()}
	// The overweight goal is a single-responsibility analysis small enough
	// to build inline: it demonstrates the simplest coverage strategy.
	registry := elevator.Goals()
	model := elevator.Model()
	a := core.NewAnalysis(registry.MustGet(elevator.GoalDriveStoppedWhenOverweight), model)
	a.TracePaths(0)
	rel := a.AddRelationship(elevator.SigElevatorStopped, []string{"DriveController", "Drive"},
		goals.MustParse("", "", "prevfor[2s](DriveCommand == 'STOP') => ElevatorStopped").Formal,
		"A drive commanded STOP for the maximum stop delay will be stopped")
	a.SetCoverage(core.CoverageStrategy{
		Assignment:  core.SingleResponsibility,
		Scope:       core.Restrictive,
		Responsible: []string{"DriveController"},
		Note:        "The weight sensor is observable one state late; the subgoal reacts to the previous state's weight.",
	})
	a.AddElaboration("ew > wt => IsStopped(es)  covered by stopping the drive whenever the previous weight exceeded the threshold",
		core.TacticIntroduceActuation, []int{rel}, "")
	a.AddSubgoal(core.SubsystemGoal{
		Subsystem:   "DriveController",
		Goal:        registry.MustGet(elevator.SubgoalDriveStopOverweight),
		Controls:    []string{elevator.SigDriveCommand},
		Observes:    []string{elevator.SigElevatorWeight},
		Restrictive: true,
		MonitorAt:   "DriveController",
	})
	return append(analyses, a)
}
