// Command figures regenerates the time series behind the thesis' scenario
// figures (Figures 5.2–5.15) as CSV on stdout or into a directory.
//
// Usage:
//
//	figures [-id 5.2] [-dir out/] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	id := fs.String("id", "", "regenerate only the figure with this thesis number (e.g. 5.4)")
	dir := fs.String("dir", "", "write one CSV file per figure into this directory instead of stdout")
	list := fs.Bool("list", false, "list the available figures and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	figs := scenarios.Figures()
	if *list {
		for _, f := range figs {
			fmt.Printf("%-6s scenario %-2d  %s\n", f.ID, f.Scenario, f.Title)
		}
		return nil
	}

	// Run each needed scenario once.
	results := make(map[int]scenarios.Result)
	for _, f := range figs {
		if *id != "" && f.ID != *id {
			continue
		}
		if _, ok := results[f.Scenario]; !ok {
			sc, ok := scenarios.ScenarioByNumber(f.Scenario)
			if !ok {
				return fmt.Errorf("figure %s references unknown scenario %d", f.ID, f.Scenario)
			}
			results[f.Scenario] = scenarios.Run(sc)
		}
	}

	matched := 0
	for _, f := range figs {
		if *id != "" && f.ID != *id {
			continue
		}
		matched++
		csv := scenarios.RenderFigureCSV(results[f.Scenario], f)
		if *dir == "" {
			fmt.Print(csv)
			fmt.Println()
			continue
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		name := filepath.Join(*dir, "figure-"+strings.ReplaceAll(f.ID, ".", "_")+".csv")
		if err := os.WriteFile(name, []byte(csv), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", name)
	}
	if matched == 0 {
		return fmt.Errorf("no figure with id %q", *id)
	}
	return nil
}
