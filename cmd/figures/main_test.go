package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestRunSingleFigureToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-id", "5.12", "-dir", dir}); err != nil {
		t.Fatalf("run(-id 5.12): %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure-5_12.csv"))
	if err != nil {
		t.Fatalf("expected the figure CSV to be written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("figure CSV is empty")
	}
}

func TestRunSingleFigureToStdout(t *testing.T) {
	if err := run([]string{"-id", "5.12"}); err != nil {
		t.Fatalf("run(-id 5.12 to stdout): %v", err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-id", "99.9"}); err == nil {
		t.Fatal("unknown figure id should be an error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flags should be an error")
	}
}
