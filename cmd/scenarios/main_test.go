package main

import "testing"

func TestRunSingleScenario(t *testing.T) {
	if err := run([]string{"-n", "7"}); err != nil {
		t.Fatalf("run(-n 7): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-n", "99"}); err == nil {
		t.Fatal("unknown scenario number should be an error")
	}
}

func TestRunTablesAndGoals(t *testing.T) {
	if err := run([]string{"-n", "7", "-table53", "-goals", "-detail"}); err != nil {
		t.Fatalf("run with table/goal flags: %v", err)
	}
}

func TestRunCorrectedFlag(t *testing.T) {
	if err := run([]string{"-n", "7", "-corrected"}); err != nil {
		t.Fatalf("run(-corrected): %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flags should be an error")
	}
}
