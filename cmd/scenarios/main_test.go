package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunSingleScenario(t *testing.T) {
	if err := run([]string{"-n", "7"}, io.Discard); err != nil {
		t.Fatalf("run(-n 7): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown scenario number should be an error")
	}
	if err := run([]string{"-sweep", "-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown sweep scenario number should be an error")
	}
}

func TestRunTablesAndGoals(t *testing.T) {
	if err := run([]string{"-n", "7", "-table53", "-goals", "-detail"}, io.Discard); err != nil {
		t.Fatalf("run with table/goal flags: %v", err)
	}
}

func TestRunCorrectedFlag(t *testing.T) {
	if err := run([]string{"-n", "7", "-corrected"}, io.Discard); err != nil {
		t.Fatalf("run(-corrected): %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flags should be an error")
	}
}

func TestRunJSONRejectsRenderedTables(t *testing.T) {
	if err := run([]string{"-n", "7", "-json", "-table53"}, io.Discard); err == nil {
		t.Fatal("-json with -table53 would corrupt the JSON stream and must be rejected")
	}
	if err := run([]string{"-n", "7", "-json", "-goals"}, io.Discard); err == nil {
		t.Fatal("-json with -goals would corrupt the JSON stream and must be rejected")
	}
}

// TestRunSweepCorrected checks that -corrected narrows the sweep to the
// ablation configuration: only corrected variants run, and none collide.
func TestRunSweepCorrected(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 6 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -corrected -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 6 {
		t.Fatalf("corrected sweep of one family should run 6 variants, got %d", rep.Runs)
	}
	for _, r := range rep.Results {
		if !r.Corrected {
			t.Errorf("variant %s ran with seeded defects; -corrected must narrow the sweep", r.Name)
		}
		if r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
}

func TestRunJSONSingleScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "7", "-workers", "2", "-json"}, &buf); err != nil {
		t.Fatalf("run(-n 7 -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 1 || len(rep.Results) != 1 {
		t.Fatalf("expected one run, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	if rep.Results[0].Scenario != 7 || !rep.Results[0].Collision {
		t.Errorf("scenario 7 should collide: %+v", rep.Results[0])
	}
	if rep.Collisions != 1 || rep.EarlyTerminations != 1 {
		t.Errorf("aggregate counts wrong: %+v", rep)
	}
}

// TestRunSweepSingleFamily sweeps the scenario-7 family (12 variants: three
// initial speeds, two object distances, defects seeded and corrected) through
// the parallel runner and checks the machine-readable aggregate.
func TestRunSweepSingleFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 12 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 12 || len(rep.Results) != 12 {
		t.Fatalf("expected 12 variants, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	seededCollisions := 0
	for _, r := range rep.Results {
		if r.Scenario != 7 {
			t.Errorf("variant %s belongs to scenario %d, want 7", r.Name, r.Scenario)
		}
		if !r.Corrected && r.Collision {
			seededCollisions++
		}
		if r.Corrected && r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
	if seededCollisions == 0 {
		t.Error("the seeded RCA defect should produce collisions somewhere in the family")
	}
}

// TestRunStreamNDJSON checks -stream output: one NDJSON line per run in
// input order, then a final aggregate line matching the batch -json path.
func TestRunStreamNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 6 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-stream"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -corrected -stream): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("expected 6 run lines + 1 aggregate line, got %d", len(lines))
	}
	var agg batchReport
	for i, line := range lines[:6] {
		var r runReport
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("run line %d is not valid JSON: %v", i, err)
		}
		if r.Scenario != 7 || !r.Corrected {
			t.Errorf("run line %d: %+v, want corrected scenario-7 variants", i, r)
		}
		agg.Aggregate.Hits += r.Hits
		agg.Aggregate.FalseNegatives += r.FalseNegatives
		agg.Aggregate.FalsePositives += r.FalsePositives
	}
	var final batchReport
	if err := json.Unmarshal([]byte(lines[6]), &final); err != nil {
		t.Fatalf("aggregate line is not valid JSON: %v", err)
	}
	if final.Runs != 6 || len(final.Results) != 0 {
		t.Errorf("aggregate line = %+v, want 6 runs and no embedded results", final)
	}
	if final.Aggregate != agg.Aggregate {
		t.Errorf("final aggregate %+v != sum of streamed lines %+v", final.Aggregate, agg.Aggregate)
	}

	// The batch -json path over the same jobs must agree with the stream's
	// final aggregate — the acceptance check for the streaming redesign.
	var jsonBuf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-json"}, &jsonBuf); err != nil {
		t.Fatalf("run(-json): %v", err)
	}
	var batch batchReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &batch); err != nil {
		t.Fatalf("batch output is not valid JSON: %v", err)
	}
	if batch.Aggregate != final.Aggregate || batch.Runs != final.Runs ||
		batch.Collisions != final.Collisions || batch.EarlyTerminations != final.EarlyTerminations {
		t.Errorf("batch aggregate %+v != streamed aggregate %+v", batch, final)
	}
}

// TestRunTimeoutPartialAggregate checks that -timeout cancels the sweep
// cleanly: run reports the context error and the NDJSON stream still ends
// with a valid aggregate line covering the completed prefix.
func TestRunTimeoutPartialAggregate(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sweep", "-n", "7", "-stream", "-workers", "1", "-timeout", "1ms"}, &buf)
	if err == nil {
		t.Fatal("a 1ms timeout should cancel the sweep")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	var final batchReport
	if err := json.Unmarshal([]byte(last), &final); err != nil {
		t.Fatalf("final line is not a valid aggregate: %v", err)
	}
	if final.Runs != len(lines)-1 {
		t.Errorf("aggregate covers %d runs, stream emitted %d run lines", final.Runs, len(lines)-1)
	}
	if final.Runs >= 12 {
		t.Errorf("a 1ms timeout should not complete all 12 variants, got %d", final.Runs)
	}
}

// TestRunSweepSizeFlag checks the -sweep-size presets are wired through and
// invalid presets are rejected.
func TestRunSweepSizeFlag(t *testing.T) {
	if err := run([]string{"-sweep", "-sweep-size", "enormous"}, io.Discard); err == nil {
		t.Fatal("unknown -sweep-size should be an error")
	}
	if testing.Short() {
		t.Skip("wide sweep of one family runs 18 simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-sweep-size", "wide", "-n", "7", "-corrected", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep-size wide): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 18 {
		t.Errorf("wide corrected scenario-7 family should run 3*2*3=18 variants, got %d", rep.Runs)
	}
}

// TestRunStreamRejectsRenderedTables mirrors the -json guard for -stream.
func TestRunStreamRejectsRenderedTables(t *testing.T) {
	if err := run([]string{"-n", "7", "-stream", "-table53"}, io.Discard); err == nil {
		t.Fatal("-stream with -table53 would corrupt the NDJSON stream and must be rejected")
	}
}

// TestRunTimeoutJSONPartialAggregate checks the -json path also reports the
// completed prefix on timeout: a valid document is emitted alongside the
// context error, matching -stream's partial-aggregate behaviour.
func TestRunTimeoutJSONPartialAggregate(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sweep", "-n", "7", "-json", "-workers", "1", "-timeout", "1ms"}, &buf)
	if err == nil {
		t.Fatal("a 1ms timeout should cancel the sweep")
	}
	var rep batchReport
	if jsonErr := json.Unmarshal(buf.Bytes(), &rep); jsonErr != nil {
		t.Fatalf("timed-out -json run must still emit a valid document: %v", jsonErr)
	}
	if rep.Runs != len(rep.Results) {
		t.Errorf("aggregate covers %d runs but %d results are embedded", rep.Runs, len(rep.Results))
	}
	if rep.Runs >= 12 {
		t.Errorf("a 1ms timeout should not complete all 12 variants, got %d", rep.Runs)
	}
}
