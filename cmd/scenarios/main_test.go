package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func TestRunSingleScenario(t *testing.T) {
	if err := run([]string{"-n", "7"}, io.Discard); err != nil {
		t.Fatalf("run(-n 7): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown scenario number should be an error")
	}
	if err := run([]string{"-sweep", "-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown sweep scenario number should be an error")
	}
}

func TestRunTablesAndGoals(t *testing.T) {
	if err := run([]string{"-n", "7", "-table53", "-goals", "-detail"}, io.Discard); err != nil {
		t.Fatalf("run with table/goal flags: %v", err)
	}
}

func TestRunCorrectedFlag(t *testing.T) {
	if err := run([]string{"-n", "7", "-corrected"}, io.Discard); err != nil {
		t.Fatalf("run(-corrected): %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flags should be an error")
	}
}

func TestRunJSONRejectsRenderedTables(t *testing.T) {
	if err := run([]string{"-n", "7", "-json", "-table53"}, io.Discard); err == nil {
		t.Fatal("-json with -table53 would corrupt the JSON stream and must be rejected")
	}
	if err := run([]string{"-n", "7", "-json", "-goals"}, io.Discard); err == nil {
		t.Fatal("-json with -goals would corrupt the JSON stream and must be rejected")
	}
}

// TestRunSweepCorrected checks that -corrected narrows the sweep to the
// ablation configuration: only corrected variants run, and none collide.
func TestRunSweepCorrected(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 6 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -corrected -json): %v", err)
	}
	var rep dist.AggregateReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 6 {
		t.Fatalf("corrected sweep of one family should run 6 variants, got %d", rep.Runs)
	}
	for _, r := range rep.Results {
		if !r.Corrected {
			t.Errorf("variant %s ran with seeded defects; -corrected must narrow the sweep", r.Name)
		}
		if r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
}

func TestRunJSONSingleScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "7", "-workers", "2", "-json"}, &buf); err != nil {
		t.Fatalf("run(-n 7 -json): %v", err)
	}
	var rep dist.AggregateReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 1 || len(rep.Results) != 1 {
		t.Fatalf("expected one run, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	if rep.Results[0].Scenario != 7 || !rep.Results[0].Collision {
		t.Errorf("scenario 7 should collide: %+v", rep.Results[0])
	}
	if rep.Collisions != 1 || rep.EarlyTerminations != 1 {
		t.Errorf("aggregate counts wrong: %+v", rep)
	}
}

// TestRunSweepSingleFamily sweeps the scenario-7 family (12 variants: three
// initial speeds, two object distances, defects seeded and corrected) through
// the parallel runner and checks the machine-readable aggregate.
func TestRunSweepSingleFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 12 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -json): %v", err)
	}
	var rep dist.AggregateReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 12 || len(rep.Results) != 12 {
		t.Fatalf("expected 12 variants, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	seededCollisions := 0
	for _, r := range rep.Results {
		if r.Scenario != 7 {
			t.Errorf("variant %s belongs to scenario %d, want 7", r.Name, r.Scenario)
		}
		if !r.Corrected && r.Collision {
			seededCollisions++
		}
		if r.Corrected && r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
	if seededCollisions == 0 {
		t.Error("the seeded RCA defect should produce collisions somewhere in the family")
	}
}

// TestRunStreamNDJSON checks -stream output: one NDJSON line per run in
// input order, then a final aggregate line matching the batch -json path.
func TestRunStreamNDJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 6 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-stream"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -corrected -stream): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 {
		t.Fatalf("expected 6 run lines + 1 aggregate line, got %d", len(lines))
	}
	var agg dist.AggregateReport
	for i, line := range lines[:6] {
		var r dist.RunReport
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("run line %d is not valid JSON: %v", i, err)
		}
		if r.Scenario != 7 || !r.Corrected {
			t.Errorf("run line %d: %+v, want corrected scenario-7 variants", i, r)
		}
		agg.Aggregate.Hits += r.Hits
		agg.Aggregate.FalseNegatives += r.FalseNegatives
		agg.Aggregate.FalsePositives += r.FalsePositives
	}
	var final dist.AggregateReport
	if err := json.Unmarshal([]byte(lines[6]), &final); err != nil {
		t.Fatalf("aggregate line is not valid JSON: %v", err)
	}
	if final.Runs != 6 || len(final.Results) != 0 {
		t.Errorf("aggregate line = %+v, want 6 runs and no embedded results", final)
	}
	if final.Aggregate != agg.Aggregate {
		t.Errorf("final aggregate %+v != sum of streamed lines %+v", final.Aggregate, agg.Aggregate)
	}

	// The batch -json path over the same jobs must agree with the stream's
	// final aggregate — the acceptance check for the streaming redesign.
	var jsonBuf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-json"}, &jsonBuf); err != nil {
		t.Fatalf("run(-json): %v", err)
	}
	var batch dist.AggregateReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &batch); err != nil {
		t.Fatalf("batch output is not valid JSON: %v", err)
	}
	if batch.Aggregate != final.Aggregate || batch.Runs != final.Runs ||
		batch.Collisions != final.Collisions || batch.EarlyTerminations != final.EarlyTerminations {
		t.Errorf("batch aggregate %+v != streamed aggregate %+v", batch, final)
	}
}

// TestRunTimeoutPartialAggregate checks that -timeout cancels the sweep
// cleanly: run reports the context error and the NDJSON stream still ends
// with a valid aggregate line covering the completed prefix.
func TestRunTimeoutPartialAggregate(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sweep", "-n", "7", "-stream", "-workers", "1", "-timeout", "1ms"}, &buf)
	if err == nil {
		t.Fatal("a 1ms timeout should cancel the sweep")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	last := lines[len(lines)-1]
	var final dist.AggregateReport
	if err := json.Unmarshal([]byte(last), &final); err != nil {
		t.Fatalf("final line is not a valid aggregate: %v", err)
	}
	if final.Runs != len(lines)-1 {
		t.Errorf("aggregate covers %d runs, stream emitted %d run lines", final.Runs, len(lines)-1)
	}
	if final.Runs >= 12 {
		t.Errorf("a 1ms timeout should not complete all 12 variants, got %d", final.Runs)
	}
}

// TestRunSweepSizeFlag checks the -sweep-size presets are wired through and
// invalid presets are rejected.
func TestRunSweepSizeFlag(t *testing.T) {
	if err := run([]string{"-sweep", "-sweep-size", "enormous"}, io.Discard); err == nil {
		t.Fatal("unknown -sweep-size should be an error")
	}
	if testing.Short() {
		t.Skip("wide sweep of one family runs 18 simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-sweep-size", "wide", "-n", "7", "-corrected", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep-size wide): %v", err)
	}
	var rep dist.AggregateReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 18 {
		t.Errorf("wide corrected scenario-7 family should run 3*2*3=18 variants, got %d", rep.Runs)
	}
}

// TestRunStreamRejectsRenderedTables mirrors the -json guard for -stream.
func TestRunStreamRejectsRenderedTables(t *testing.T) {
	if err := run([]string{"-n", "7", "-stream", "-table53"}, io.Discard); err == nil {
		t.Fatal("-stream with -table53 would corrupt the NDJSON stream and must be rejected")
	}
}

// TestRunTimeoutJSONPartialAggregate checks the -json path also reports the
// completed prefix on timeout: a valid document is emitted alongside the
// context error, matching -stream's partial-aggregate behaviour.
func TestRunTimeoutJSONPartialAggregate(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-sweep", "-n", "7", "-json", "-workers", "1", "-timeout", "1ms"}, &buf)
	if err == nil {
		t.Fatal("a 1ms timeout should cancel the sweep")
	}
	var rep dist.AggregateReport
	if jsonErr := json.Unmarshal(buf.Bytes(), &rep); jsonErr != nil {
		t.Fatalf("timed-out -json run must still emit a valid document: %v", jsonErr)
	}
	if rep.Runs != len(rep.Results) {
		t.Errorf("aggregate covers %d runs but %d results are embedded", rep.Runs, len(rep.Results))
	}
	if rep.Runs >= 12 {
		t.Errorf("a 1ms timeout should not complete all 12 variants, got %d", rep.Runs)
	}
}

// TestRunShardFlagValidation checks -shard and -seed-results argument
// validation: malformed or out-of-range shard specs and seed files outside
// the machine-readable modes are rejected before anything runs.
func TestRunShardFlagValidation(t *testing.T) {
	for _, spec := range []string{"banana", "3/3", "-1/3", "0/0", "1"} {
		if err := run([]string{"-sweep", "-stream", "-shard", spec}, io.Discard); err == nil {
			t.Errorf("-shard %s should be rejected", spec)
		}
	}
	if err := run([]string{"-n", "7", "-seed-results", "nope.ndjson"}, io.Discard); err == nil {
		t.Error("-seed-results without -sweep/-json/-stream should be rejected")
	}
	if err := run([]string{"-sweep", "-stream", "-seed-results", "definitely-missing.ndjson"}, io.Discard); err == nil {
		t.Error("a missing -seed-results file should be an error")
	}
}

// TestRunShardPartition runs every shard of a 3-way split and checks the
// shard streams are disjoint, cover the unsharded run exactly, and sum to
// the same aggregate — the worker-side half of the distributed contract.
func TestRunShardPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario-7 corrected family four times")
	}
	base := []string{"-sweep", "-n", "7", "-corrected", "-stream"}

	var full bytes.Buffer
	if err := run(base, &full); err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	fullLines := strings.Split(strings.TrimSpace(full.String()), "\n")
	var fullAgg dist.AggregateReport
	if err := json.Unmarshal([]byte(fullLines[len(fullLines)-1]), &fullAgg); err != nil {
		t.Fatalf("unsharded aggregate: %v", err)
	}
	want := make(map[string]string) // name -> run line
	for _, line := range fullLines[:len(fullLines)-1] {
		var r dist.RunReport
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("unsharded run line: %v", err)
		}
		want[r.Name] = line
	}

	const n = 3
	got := make(map[string]string)
	var summed dist.AggregateReport
	for shard := 0; shard < n; shard++ {
		var buf bytes.Buffer
		spec := fmt.Sprintf("%d/%d", shard, n)
		if err := run(append(append([]string{}, base...), "-shard", spec), &buf); err != nil {
			t.Fatalf("shard %s: %v", spec, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		var agg dist.AggregateReport
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &agg); err != nil {
			t.Fatalf("shard %s aggregate: %v", spec, err)
		}
		summed.Runs += agg.Runs
		summed.Collisions += agg.Collisions
		summed.EarlyTerminations += agg.EarlyTerminations
		summed.Aggregate.Hits += agg.Aggregate.Hits
		summed.Aggregate.FalseNegatives += agg.Aggregate.FalseNegatives
		summed.Aggregate.FalsePositives += agg.Aggregate.FalsePositives
		for _, line := range lines[:len(lines)-1] {
			var r dist.RunReport
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatalf("shard %s run line: %v", spec, err)
			}
			if _, dup := got[r.Name]; dup {
				t.Errorf("variant %s appears in two shards; the partition must be disjoint", r.Name)
			}
			got[r.Name] = line
		}
	}
	if len(got) != len(want) {
		t.Fatalf("shards delivered %d variants, unsharded run %d", len(got), len(want))
	}
	for name, line := range want {
		if got[name] != line {
			t.Errorf("variant %s: shard line %s != unsharded line %s", name, got[name], line)
		}
	}
	if summed.Runs != fullAgg.Runs || summed.Aggregate != fullAgg.Aggregate ||
		summed.Collisions != fullAgg.Collisions || summed.EarlyTerminations != fullAgg.EarlyTerminations {
		t.Errorf("summed shard aggregates %+v != unsharded aggregate %+v", summed, fullAgg)
	}
}

// TestRunSeedResults replays a run entirely from a seed file: the second run
// must be byte-identical to the first, with every variant a cache hit.
func TestRunSeedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scenario-7 corrected family")
	}
	base := []string{"-sweep", "-n", "7", "-corrected", "-stream"}
	var first bytes.Buffer
	if err := run(base, &first); err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	// Rebuild ProvedResults from the baseline stream, exactly as the
	// coordinator does: enumerate the same source, map each report back to
	// its job, and reconstitute the summary-only Result.
	sw, err := scenarios.SweepBySize("default")
	if err != nil {
		t.Fatal(err)
	}
	var kept []scenarios.Family
	for _, f := range sw.Families {
		if f.Base.Number == 7 {
			f.OptionSets = []scenarios.Options{{CorrectDefects: true}}
			kept = append(kept, f)
		}
	}
	sw.Families = kept
	byName := make(map[string]scenarios.Job)
	src := sw.Source()
	for {
		job, ok := src.Next()
		if !ok {
			break
		}
		byName[job.Scenario.Name] = job
	}
	var proved []dist.ProvedResult
	for _, line := range strings.Split(strings.TrimSpace(first.String()), "\n") {
		rep, ok, err := dist.ParseResultLine([]byte(line))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		job, found := byName[rep.Name]
		if !found {
			t.Fatalf("baseline reported unknown variant %s", rep.Name)
		}
		proved = append(proved, dist.ProvedResult{Options: job.Options, Result: rep.Result(job)})
	}
	seedFile := filepath.Join(t.TempDir(), "seed.ndjson")
	f, err := os.Create(seedFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := dist.WriteProved(f, proved); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var second bytes.Buffer
	if err := run(append(append([]string{}, base...), "-seed-results", seedFile), &second); err != nil {
		t.Fatalf("seeded run: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("seeded replay differs from baseline:\n--- baseline ---\n%s\n--- seeded ---\n%s", first.String(), second.String())
	}
}

// TestEngineStatsReport pins the -cache-stats stderr report: after streaming
// the 30-variant tolerance sweep (10 families x 3 tolerances, the
// tolerance axis innermost), the dynamics-grouping line must show 10 groups
// over 30 jobs with exactly ceil(30/3) = 10 simulation passes run.
func TestEngineStatsReport(t *testing.T) {
	sw, err := scenarios.SweepBySize("tolerance")
	if err != nil {
		t.Fatal(err)
	}
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 200 * time.Millisecond
	}
	engine := scenarios.NewEngine(
		scenarios.WithRetention(scenarios.SummaryOnly),
		scenarios.WithResultCache(),
	)
	if _, err := engine.Accumulate(context.Background(), sw.Source()); err != nil {
		t.Fatal(err)
	}
	got := engineStats(engine)
	// Ten equal-duration dynamics groups widen into 4+4+2 lane batches at
	// the default width of four.
	want := "result cache: 0 hits, 30 misses\n" +
		"dynamics groups: 10 groups over 30 jobs, 10 sims run, 20 saved (mean width 3.00)\n" +
		"lane batches: 3 widened runs over 10 lanes, 0 ragged (mean width 3.33)\n"
	if got != want {
		t.Errorf("engineStats =\n%q\nwant\n%q", got, want)
	}

	// An engine that never grouped (and has no cache) reports zeros rather
	// than omitting the lines, so the format is stable for log scrapers.
	empty := engineStats(scenarios.NewEngine(scenarios.WithGrouping(false)))
	want = "result cache: 0 hits, 0 misses\n" +
		"dynamics groups: 0 groups over 0 jobs, 0 sims run, 0 saved (mean width 0.00)\n" +
		"lane batches: 0 widened runs over 0 lanes, 0 ragged (mean width 0.00)\n"
	if empty != want {
		t.Errorf("zero-state engineStats =\n%q\nwant\n%q", empty, want)
	}
}
