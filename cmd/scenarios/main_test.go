package main

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
)

func TestRunSingleScenario(t *testing.T) {
	if err := run([]string{"-n", "7"}, io.Discard); err != nil {
		t.Fatalf("run(-n 7): %v", err)
	}
}

func TestRunUnknownScenario(t *testing.T) {
	if err := run([]string{"-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown scenario number should be an error")
	}
	if err := run([]string{"-sweep", "-n", "99"}, io.Discard); err == nil {
		t.Fatal("unknown sweep scenario number should be an error")
	}
}

func TestRunTablesAndGoals(t *testing.T) {
	if err := run([]string{"-n", "7", "-table53", "-goals", "-detail"}, io.Discard); err != nil {
		t.Fatalf("run with table/goal flags: %v", err)
	}
}

func TestRunCorrectedFlag(t *testing.T) {
	if err := run([]string{"-n", "7", "-corrected"}, io.Discard); err != nil {
		t.Fatalf("run(-corrected): %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, io.Discard); err == nil {
		t.Fatal("bad flags should be an error")
	}
}

func TestRunJSONRejectsRenderedTables(t *testing.T) {
	if err := run([]string{"-n", "7", "-json", "-table53"}, io.Discard); err == nil {
		t.Fatal("-json with -table53 would corrupt the JSON stream and must be rejected")
	}
	if err := run([]string{"-n", "7", "-json", "-goals"}, io.Discard); err == nil {
		t.Fatal("-json with -goals would corrupt the JSON stream and must be rejected")
	}
}

// TestRunSweepCorrected checks that -corrected narrows the sweep to the
// ablation configuration: only corrected variants run, and none collide.
func TestRunSweepCorrected(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 6 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-corrected", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -corrected -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 6 {
		t.Fatalf("corrected sweep of one family should run 6 variants, got %d", rep.Runs)
	}
	for _, r := range rep.Results {
		if !r.Corrected {
			t.Errorf("variant %s ran with seeded defects; -corrected must narrow the sweep", r.Name)
		}
		if r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
}

func TestRunJSONSingleScenario(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "7", "-workers", "2", "-json"}, &buf); err != nil {
		t.Fatalf("run(-n 7 -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 1 || len(rep.Results) != 1 {
		t.Fatalf("expected one run, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	if rep.Results[0].Scenario != 7 || !rep.Results[0].Collision {
		t.Errorf("scenario 7 should collide: %+v", rep.Results[0])
	}
	if rep.Collisions != 1 || rep.EarlyTerminations != 1 {
		t.Errorf("aggregate counts wrong: %+v", rep)
	}
}

// TestRunSweepSingleFamily sweeps the scenario-7 family (12 variants: three
// initial speeds, two object distances, defects seeded and corrected) through
// the parallel runner and checks the machine-readable aggregate.
func TestRunSweepSingleFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep runs 12 full scenario simulations")
	}
	var buf bytes.Buffer
	if err := run([]string{"-sweep", "-n", "7", "-json"}, &buf); err != nil {
		t.Fatalf("run(-sweep -n 7 -json): %v", err)
	}
	var rep batchReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Runs != 12 || len(rep.Results) != 12 {
		t.Fatalf("expected 12 variants, got %d (%d results)", rep.Runs, len(rep.Results))
	}
	seededCollisions := 0
	for _, r := range rep.Results {
		if r.Scenario != 7 {
			t.Errorf("variant %s belongs to scenario %d, want 7", r.Name, r.Scenario)
		}
		if !r.Corrected && r.Collision {
			seededCollisions++
		}
		if r.Corrected && r.Collision {
			t.Errorf("corrected variant %s should avoid the collision", r.Name)
		}
	}
	if seededCollisions == 0 {
		t.Error("the seeded RCA defect should produce collisions somewhere in the family")
	}
}
