// Command scenarios runs the ten semi-autonomous-vehicle evaluation
// scenarios of thesis Section 5.4 with the full Table 5.3 monitoring suite
// and prints the Appendix D violation tables, the hit / false-negative /
// false-positive classification and the cross-scenario summary.
//
// Usage:
//
//	scenarios [-n number] [-detail] [-table53] [-goals]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	number := fs.Int("n", 0, "run only the given thesis scenario number (1-10)")
	detail := fs.Bool("detail", false, "print per-detection classification details")
	table53 := fs.Bool("table53", false, "print the Table 5.3 monitoring-location matrix")
	showGoals := fs.Bool("goals", false, "print the nine system safety goals (Tables 5.1/5.2)")
	corrected := fs.Bool("corrected", false, "ablation: run with every seeded defect removed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := scenarios.Options{CorrectDefects: *corrected}

	if *showGoals {
		for _, g := range scenarios.VehicleGoals().All() {
			fmt.Println(g.String())
			fmt.Println()
		}
	}
	if *table53 {
		fmt.Println(scenarios.RenderTable5_3())
	}

	var results []scenarios.Result
	if *number != 0 {
		sc, ok := scenarios.ScenarioByNumber(*number)
		if !ok {
			return fmt.Errorf("no scenario numbered %d", *number)
		}
		results = append(results, scenarios.RunWithOptions(sc, opts))
	} else {
		for _, sc := range scenarios.Scenarios() {
			results = append(results, scenarios.RunWithOptions(sc, opts))
		}
	}

	for _, r := range results {
		fmt.Println(scenarios.RenderViolationTable(r))
		if *detail {
			fmt.Println(scenarios.RenderClassificationDetail(r))
		}
	}
	if len(results) > 1 {
		fmt.Println(scenarios.RenderSummary(results))
	}
	return nil
}
