// Command scenarios runs the semi-autonomous-vehicle evaluation scenarios of
// thesis Section 5.4 with the full Table 5.3 monitoring suite and prints the
// Appendix D violation tables, the hit / false-negative / false-positive
// classification and the cross-scenario summary.
//
// Scenarios execute on the streaming scenarios.Engine; -workers sizes the
// pool and -timeout bounds the whole evaluation (cancellation drains cleanly
// and reports the partial aggregate).  Beyond the ten fixed thesis scenarios,
// -sweep evaluates a parameter sweep whose grid -sweep-size selects: default
// (120 variants over initial speed, object distance and defect
// configuration), wide (360, adds object speeds), huge (1296, adds a
// fourth speed, a third distance and the gear axis), tolerance (30, varies
// the hit-matching window) or defects (120, per-feature defect subsets under
// perturbed driver schedules).  Sweeps stream lazily with summary-only trace
// retention, so memory stays O(workers) however large the grid; each worker
// compiles the monitoring plan into one shared evaluation program and reuses
// it across every variant it runs.
//
// -json emits one machine-readable summary document; -stream emits NDJSON —
// one line per completed run, in input order, followed by a final aggregate
// line — so downstream tooling can consume results while the sweep is still
// running.
//
// -shard i/n restricts the evaluation to the i-th of n deterministic variant
// shards (stable FNV-1a partition of the variant key; see internal/dist), so
// this binary unchanged is the worker of a distributed sweep — cmd/sweepd is
// the matching coordinator.  -seed-results loads a ProvedResult NDJSON file
// into the engine's result cache, so a re-queued shard replays
// already-proved variants instead of re-simulating them.
//
// -cpuprofile and -memprofile write pprof profiles of the evaluation, so
// sweep hot spots can be inspected without editing code.
//
// Usage:
//
//	scenarios [-n number] [-detail] [-table53] [-goals] [-corrected]
//	          [-workers n] [-timeout d] [-sweep] [-sweep-size s]
//	          [-shard i/n] [-seed-results f]
//	          [-json] [-stream] [-cache-stats]
//	          [-cpuprofile f] [-memprofile f]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/dist"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// The machine-readable report shapes (per-run lines and the aggregate
// trailer/document) live in internal/dist: this binary's NDJSON output IS
// the distributed worker protocol, and sharing the structs is what makes a
// merged multi-worker stream byte-identical to a single-process one.

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	number := fs.Int("n", 0, "run only the given thesis scenario number (1-10); with -sweep, sweep only that scenario's family")
	detail := fs.Bool("detail", false, "print per-detection classification details (rendered-table mode only; no effect with -sweep, -json or -stream)")
	table53 := fs.Bool("table53", false, "print the Table 5.3 monitoring-location matrix")
	showGoals := fs.Bool("goals", false, "print the nine system safety goals (Tables 5.1/5.2)")
	corrected := fs.Bool("corrected", false, "ablation: run with every seeded defect removed")
	workers := fs.Int("workers", 0, "worker-pool size for scenario execution (default GOMAXPROCS)")
	timeout := fs.Duration("timeout", 0, "bound the whole evaluation; on expiry in-flight runs drain and the partial aggregate is reported (0 = no bound)")
	sweep := fs.Bool("sweep", false, "evaluate a parameter sweep instead of the ten fixed scenarios")
	sweepSize := fs.String("sweep-size", "default", "sweep grid preset: default (120 variants), wide (360, adds object speeds), huge (1296, adds speeds, distances and gears where meaningful), tolerance (30, varies the hit-matching window) or defects (120, per-feature defect subsets under perturbed driver schedules)")
	shard := fs.String("shard", "", "evaluate only shard i/n of the job stream (e.g. 0/3): the deterministic variant-key partition used by distributed sweeps (empty = everything)")
	seedResults := fs.String("seed-results", "", "load a ProvedResult NDJSON file into the result cache so already-proved variants replay without simulation (requires -sweep, -json or -stream)")
	cacheStats := fs.Bool("cache-stats", false, "memoize summary-only results by variant label (Engine result cache) and report the hit/miss and dynamics-grouping counters on stderr after the run")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON summary instead of the rendered tables")
	stream := fs.Bool("stream", false, "emit NDJSON: one line per completed run, then a final aggregate line")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the evaluation to this file (inspect with go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file when the evaluation finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := scenarios.Options{CorrectDefects: *corrected}

	if (*asJSON || *stream) && (*table53 || *showGoals) {
		return fmt.Errorf("-json/-stream cannot be combined with -table53 or -goals: the rendered tables would corrupt the output stream")
	}
	if *cacheStats && !*sweep && !*asJSON && !*stream {
		return fmt.Errorf("-cache-stats requires -sweep, -json or -stream: rendered-table runs retain full traces and never consult the summary-only result cache")
	}
	if *seedResults != "" && !*sweep && !*asJSON && !*stream {
		return fmt.Errorf("-seed-results requires -sweep, -json or -stream: rendered-table runs retain full traces and never consult the summary-only result cache")
	}
	shardIndex, shardTotal := 0, 1
	if *shard != "" {
		var err error
		shardIndex, shardTotal, err = dist.ParseShard(*shard)
		if err != nil {
			return fmt.Errorf("-shard: %w", err)
		}
	}

	// Profiling hooks, so sweep hot spots can be inspected without editing
	// code: scenarios -sweep -sweep-size huge -cpuprofile cpu.out.  They
	// start after flag validation so an erroneous invocation never truncates
	// an existing profile file.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "-cpuprofile: close: %v\n", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: close: %v\n", err)
			}
		}()
	}

	if *showGoals {
		for _, g := range scenarios.VehicleGoals().All() {
			fmt.Fprintln(w, g.String())
			fmt.Fprintln(w)
		}
	}
	if *table53 {
		fmt.Fprintln(w, scenarios.RenderTable5_3())
	}

	// Resolve the job source.  Sweeps stay lazy end to end: the grid is
	// generated variant by variant and never materialized.
	var src scenarios.JobSource
	switch {
	case *sweep:
		// The selection resolves through the same scenarios.SweepSourceFor
		// that cmd/sweepd and cmd/sweepworker use, which is what keeps a
		// worker's enumeration identical to its coordinator's.
		source, err := scenarios.SweepSourceFor(*sweepSize, *number, *corrected)
		if err != nil {
			return err
		}
		src = source()
	case *number != 0:
		sc, ok := scenarios.ScenarioByNumber(*number)
		if !ok {
			return fmt.Errorf("no scenario numbered %d", *number)
		}
		src = scenarios.SliceSource([]scenarios.Job{{Scenario: sc, Options: opts}})
	default:
		var jobs []scenarios.Job
		for _, sc := range scenarios.Scenarios() {
			jobs = append(jobs, scenarios.Job{Scenario: sc, Options: opts})
		}
		src = scenarios.SliceSource(jobs)
	}
	// Sharding composes with every source: each worker of a distributed
	// sweep enumerates the identical full stream and keeps only the variants
	// it owns, so no coordination is needed to agree on the partition.
	src = scenarios.ShardSource(src, shardIndex, shardTotal)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// The rendered Appendix D tables need the full trace and monitor suite;
	// every machine-readable path needs only the per-run summary, so sweeps
	// and JSON/NDJSON output run trace-free.
	retention := scenarios.SummaryOnly
	rendered := !*asJSON && !*stream && !*sweep
	if rendered {
		retention = scenarios.KeepTrace
	}
	engineOpts := []scenarios.EngineOption{
		scenarios.WithWorkers(*workers),
		scenarios.WithRetention(retention),
	}
	if *cacheStats || *seedResults != "" {
		engineOpts = append(engineOpts, scenarios.WithResultCache())
	}
	engine := scenarios.NewEngine(engineOpts...)
	if *seedResults != "" {
		f, err := os.Open(*seedResults)
		if err != nil {
			return fmt.Errorf("-seed-results: %w", err)
		}
		proved, err := dist.ReadProved(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("-seed-results: %w", err)
		}
		for _, p := range proved {
			engine.SeedResult(p.Job(), p.Result)
		}
	}
	if *cacheStats {
		// The counters are reported however the evaluation path returns, on
		// stderr so they never corrupt -json/-stream output.
		defer func() { fmt.Fprint(os.Stderr, engineStats(engine)) }()
	}

	var acc scenarios.Accumulator

	switch {
	case *stream:
		enc := json.NewEncoder(w)
		err := engine.Stream(ctx, src, scenarios.Tee(&acc, scenarios.SinkFunc(
			func(sr scenarios.StreamResult) error {
				return enc.Encode(dist.NewRunReport(sr))
			})))
		// The final aggregate line covers exactly the runs that completed,
		// so a timed-out stream still ends with a valid partial aggregate.
		if encErr := enc.Encode(dist.NewAggregateReport(&acc)); encErr != nil && err == nil {
			err = encErr
		}
		return err

	case *asJSON:
		var runs []dist.RunReport
		err := engine.Stream(ctx, src, scenarios.Tee(&acc, scenarios.SinkFunc(
			func(sr scenarios.StreamResult) error {
				runs = append(runs, dist.NewRunReport(sr))
				return nil
			})))
		// A timed-out evaluation still reports the completed prefix: the
		// document covers exactly the runs that finished, and the error is
		// surfaced through the exit status.
		rep := dist.NewAggregateReport(&acc)
		rep.Results = runs
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(rep); encErr != nil && err == nil {
			err = encErr
		}
		return err

	case *sweep:
		err := engine.Stream(ctx, src, &acc)
		rep := dist.NewAggregateReport(&acc)
		fmt.Fprintf(w, "Sweep: %d runs, %d collisions, %d early terminations\n",
			rep.Runs, rep.Collisions, rep.EarlyTerminations)
		fmt.Fprintf(w, "Aggregate: %s\n", rep.Aggregate)
		fmt.Fprintf(w, "Interpretation: %s\n", rep.Aggregate.CompositionEvidence())
		return err

	default:
		var results []scenarios.Result
		err := engine.Stream(ctx, src, scenarios.SinkFunc(
			func(sr scenarios.StreamResult) error {
				results = append(results, sr.Result)
				return nil
			}))
		for _, r := range results {
			fmt.Fprintln(w, scenarios.RenderViolationTable(r))
			if *detail {
				fmt.Fprintln(w, scenarios.RenderClassificationDetail(r))
			}
		}
		if len(results) > 1 {
			fmt.Fprintln(w, scenarios.RenderSummary(results))
		}
		return err
	}
}

// engineStats renders the -cache-stats report: the result-cache hit/miss
// counters, what dynamics-grouped execution did (groups formed, variants
// carried, simulation passes actually run and thereby saved) and what lane
// batching did on top (widened runs executed, dynamics groups they carried
// as lockstep lanes, and batches that fell back to the scalar path).
func engineStats(engine *scenarios.Engine) string {
	hits, misses := engine.CacheStats()
	gs := engine.GroupStats()
	ls := engine.LaneStats()
	return fmt.Sprintf("result cache: %d hits, %d misses\n", hits, misses) +
		fmt.Sprintf("dynamics groups: %d groups over %d jobs, %d sims run, %d saved (mean width %.2f)\n",
			gs.Groups, gs.Jobs, gs.Sims, gs.SimsSaved(), gs.MeanWidth()) +
		fmt.Sprintf("lane batches: %d widened runs over %d lanes, %d ragged (mean width %.2f)\n",
			ls.Batches, ls.Lanes, ls.Ragged, ls.MeanWidth())
}
