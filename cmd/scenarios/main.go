// Command scenarios runs the semi-autonomous-vehicle evaluation scenarios of
// thesis Section 5.4 with the full Table 5.3 monitoring suite and prints the
// Appendix D violation tables, the hit / false-negative / false-positive
// classification and the cross-scenario summary.
//
// Scenarios execute on a concurrent batch Runner; -workers sizes the pool.
// Beyond the ten fixed thesis scenarios, -sweep evaluates the default
// parameter sweep (120 generated variants over initial speed, object
// distance and defect configuration), and -json emits a machine-readable
// per-run and aggregate summary instead of the rendered tables.
//
// Usage:
//
//	scenarios [-n number] [-detail] [-table53] [-goals] [-corrected]
//	          [-workers n] [-sweep] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/monitor"
	"repro/internal/scenarios"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runReport is the machine-readable record of one monitored run.
type runReport struct {
	Name            string  `json:"name"`
	Scenario        int     `json:"scenario"`
	InitialSpeed    float64 `json:"initial_speed"`
	ObjectDistance  float64 `json:"object_distance"`
	ObjectSpeed     float64 `json:"object_speed"`
	Gear            string  `json:"gear"`
	Corrected       bool    `json:"corrected"`
	Steps           int     `json:"steps"`
	Collision       bool    `json:"collision"`
	TerminatedEarly bool    `json:"terminated_early"`
	Hits            int     `json:"hits"`
	FalseNegatives  int     `json:"false_negatives"`
	FalsePositives  int     `json:"false_positives"`
}

// batchReport is the machine-readable record of a whole batch or sweep.
type batchReport struct {
	Runs              int             `json:"runs"`
	Collisions        int             `json:"collisions"`
	EarlyTerminations int             `json:"early_terminations"`
	Aggregate         monitor.Summary `json:"aggregate"`
	FalseNegativeRate float64         `json:"false_negative_rate"`
	FalsePositiveRate float64         `json:"false_positive_rate"`
	Results           []runReport     `json:"results"`
}

func report(batch scenarios.SweepResult) batchReport {
	out := batchReport{
		Runs:              len(batch.Results),
		Collisions:        batch.Collisions,
		EarlyTerminations: batch.EarlyTerminations,
		Aggregate:         batch.Aggregate,
		FalseNegativeRate: batch.Aggregate.FalseNegativeRate(),
		FalsePositiveRate: batch.Aggregate.FalsePositiveRate(),
		Results:           make([]runReport, len(batch.Results)),
	}
	for i, r := range batch.Results {
		out.Results[i] = runReport{
			Name:            r.Scenario.Name,
			Scenario:        r.Scenario.Number,
			InitialSpeed:    r.Scenario.InitialSpeed,
			ObjectDistance:  r.Scenario.ObjectDistance,
			ObjectSpeed:     r.Scenario.ObjectSpeed,
			Gear:            r.Scenario.Gear,
			Corrected:       batch.Jobs[i].Options.CorrectDefects,
			Steps:           r.Trace.Len(),
			Collision:       r.Collision,
			TerminatedEarly: r.TerminatedEarly(),
			Hits:            r.Summary.Hits,
			FalseNegatives:  r.Summary.FalseNegatives,
			FalsePositives:  r.Summary.FalsePositives,
		}
	}
	return out
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	number := fs.Int("n", 0, "run only the given thesis scenario number (1-10); with -sweep, sweep only that scenario's family")
	detail := fs.Bool("detail", false, "print per-detection classification details (rendered-table mode only; no effect with -sweep or -json)")
	table53 := fs.Bool("table53", false, "print the Table 5.3 monitoring-location matrix")
	showGoals := fs.Bool("goals", false, "print the nine system safety goals (Tables 5.1/5.2)")
	corrected := fs.Bool("corrected", false, "ablation: run with every seeded defect removed")
	workers := fs.Int("workers", 0, "worker-pool size for scenario execution (default GOMAXPROCS)")
	sweep := fs.Bool("sweep", false, "evaluate the default parameter sweep instead of the ten fixed scenarios")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON summary instead of the rendered tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := scenarios.Options{CorrectDefects: *corrected}
	runner := scenarios.Runner{Workers: *workers}

	if *asJSON && (*table53 || *showGoals) {
		return fmt.Errorf("-json cannot be combined with -table53 or -goals: the rendered tables would corrupt the JSON stream")
	}

	if *showGoals {
		for _, g := range scenarios.VehicleGoals().All() {
			fmt.Fprintln(w, g.String())
			fmt.Fprintln(w)
		}
	}
	if *table53 {
		fmt.Fprintln(w, scenarios.RenderTable5_3())
	}

	var jobs []scenarios.Job
	switch {
	case *sweep:
		sw := scenarios.DefaultSweep()
		if *corrected {
			// -corrected narrows the sweep to the ablation configuration
			// instead of DefaultSweep's seeded+corrected pairing.
			for i := range sw.Families {
				sw.Families[i].OptionSets = []scenarios.Options{{CorrectDefects: true}}
			}
		}
		if *number != 0 {
			var kept []scenarios.Family
			for _, f := range sw.Families {
				if f.Base.Number == *number {
					kept = append(kept, f)
				}
			}
			if len(kept) == 0 {
				return fmt.Errorf("no scenario numbered %d", *number)
			}
			sw.Families = kept
		}
		jobs = sw.Jobs()
	case *number != 0:
		sc, ok := scenarios.ScenarioByNumber(*number)
		if !ok {
			return fmt.Errorf("no scenario numbered %d", *number)
		}
		jobs = []scenarios.Job{{Scenario: sc, Options: opts}}
	default:
		for _, sc := range scenarios.Scenarios() {
			jobs = append(jobs, scenarios.Job{Scenario: sc, Options: opts})
		}
	}

	results := runner.Run(jobs)
	batch := scenarios.Collect(jobs, results)

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report(batch))
	}

	if *sweep {
		rep := report(batch)
		fmt.Fprintf(w, "Sweep: %d runs, %d collisions, %d early terminations\n",
			rep.Runs, rep.Collisions, rep.EarlyTerminations)
		fmt.Fprintf(w, "Aggregate: %s\n", rep.Aggregate)
		fmt.Fprintf(w, "Interpretation: %s\n", rep.Aggregate.CompositionEvidence())
		return nil
	}

	for _, r := range results {
		fmt.Fprintln(w, scenarios.RenderViolationTable(r))
		if *detail {
			fmt.Fprintln(w, scenarios.RenderClassificationDetail(r))
		}
	}
	if len(results) > 1 {
		fmt.Fprintln(w, scenarios.RenderSummary(results))
	}
	return nil
}
