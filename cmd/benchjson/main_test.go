package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunSweepSummaryOnly 	       5	 107483789 ns/op	  104883 B/op	    2008 allocs/op
BenchmarkBusCommit-8           	       3	       128.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSuiteObserve/PerMonitor         	       3	      4922 ns/op	    1162 B/op	       1 allocs/op
BenchmarkSuiteObserve/Program            	       3	      1415 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem 	      10	      50 ns/op
PASS
ok  	repro	0.844s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Errorf("environment header parsed wrong: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu header parsed wrong: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(rep.Benchmarks))
	}

	sweep := rep.Benchmarks[0]
	if sweep.Name != "BenchmarkRunSweepSummaryOnly" || sweep.Iterations != 5 ||
		sweep.NsPerOp != 107483789 || sweep.BytesPerOp != 104883 || sweep.AllocsPerOp != 2008 {
		t.Errorf("sweep line parsed wrong: %+v", sweep)
	}

	commit := rep.Benchmarks[1]
	if commit.Name != "BenchmarkBusCommit" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", commit.Name)
	}
	if commit.NsPerOp != 128.0 || commit.AllocsPerOp != 0 {
		t.Errorf("commit line parsed wrong: %+v", commit)
	}

	if rep.Benchmarks[2].Name != "BenchmarkSuiteObserve/PerMonitor" ||
		rep.Benchmarks[3].Name != "BenchmarkSuiteObserve/Program" {
		t.Errorf("sub-benchmark names parsed wrong: %q, %q",
			rep.Benchmarks[2].Name, rep.Benchmarks[3].Name)
	}

	nomem := rep.Benchmarks[4]
	if nomem.NsPerOp != 50 || nomem.BytesPerOp != 0 || nomem.AllocsPerOp != 0 {
		t.Errorf("benchmem-less line parsed wrong: %+v", nomem)
	}
}

func TestParseBenchOutputKeepsFastestOfRepeats(t *testing.T) {
	out := `BenchmarkX 	 10	 200 ns/op	 8 B/op	 1 allocs/op
BenchmarkX 	 10	 100 ns/op	 8 B/op	 1 allocs/op
BenchmarkX 	 10	 150 ns/op	 8 B/op	 1 allocs/op
`
	rep, err := ParseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1 deduplicated", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].NsPerOp != 100 {
		t.Errorf("kept %v ns/op, want the fastest repeat (100)", rep.Benchmarks[0].NsPerOp)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"PASS", "ok  	repro	0.8s", "Benchmark", "BenchmarkX 10", "BenchmarkX abc 5 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine accepted %q", line)
		}
	}
}
