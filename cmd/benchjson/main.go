// Command benchjson runs the repository's headline benchmarks with -benchmem
// and writes a machine-readable JSON document (BENCH_9.json by default) with
// ns/op, B/op and allocs/op per benchmark, so the performance trajectory of
// the evaluation hot path is recorded as data rather than prose: CI uploads
// the file as a build artifact and future PRs diff their numbers against it.
//
// The default benchmark set is the perf contract of the sweep hot path:
// BenchmarkRunSweepSummaryOnly (the end-to-end 40-variant summary-only
// sweep), BenchmarkToleranceSweepGrouped (the 60-variant K-tolerance sweep
// with dynamics-grouped execution versus per-variant simulation),
// BenchmarkDefectSweepLaned (the 120-variant defect sweep lane-batched
// versus scalar — the speedup of stepping four dynamics variants in
// lockstep), BenchmarkBusCommit (the per-step plane-memmove commit),
// BenchmarkSuiteObserve (the compiled monitoring plan against one state) and
// BenchmarkDistSweep (the 1296-variant huge sweep single-process versus
// through the distributed coordinator, recording the protocol-and-merge
// overhead of multi-worker execution).
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_9.json] [-bench regex]
//	                       [-benchtime 3x] [-count 1] [-pkg .] [-short]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// defaultBenchRegex selects the headline benchmarks of the perf contract.
const defaultBenchRegex = "BenchmarkRunSweepSummaryOnly$|BenchmarkToleranceSweepGrouped$|BenchmarkDefectSweepLaned$|BenchmarkBusCommit$|BenchmarkSuiteObserve$|BenchmarkDistSweep$"

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the GOMAXPROCS suffix stripped
	// (e.g. "BenchmarkRunSweepSummaryOnly" or "BenchmarkSuiteObserve/Program").
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the allocated bytes per operation (-benchmem).
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the allocation count per operation (-benchmem).
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the written JSON document.
type Report struct {
	// Goos / Goarch / CPU / Pkg echo the benchmark environment header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Benchmarks are the parsed results in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_9.json", "output file")
	bench := flag.String("bench", defaultBenchRegex, "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	short := flag.Bool("short", false, "pass -short to go test (benchmarks trim their heaviest sweeps)")
	flag.Parse()

	if err := run(*out, *bench, *benchtime, *count, *pkg, *short); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(out, bench, benchtime string, count int, pkg string, short bool) error {
	args := []string{"test", "-run=^$",
		"-bench=" + bench, "-benchmem", "-benchtime=" + benchtime,
		"-count=" + strconv.Itoa(count)}
	if short {
		args = append(args, "-short")
	}
	cmd := exec.Command("go", append(args, pkg)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("benchjson: go test: %w", err)
	}
	if _, err := os.Stdout.Write(raw); err != nil {
		return fmt.Errorf("benchjson: echoing bench output: %w", err)
	}

	report, err := ParseBenchOutput(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark results matched %q", bench)
	}
	doc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if err := os.WriteFile(out, doc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmark(s) to %s\n", len(report.Benchmarks), out)
	return nil
}

// ParseBenchOutput parses `go test -bench -benchmem` output.  When the same
// benchmark appears several times (-count > 1), the kept entry is the one
// with the lowest ns/op — the least-noise measurement.
func ParseBenchOutput(r io.Reader) (Report, error) {
	var rep Report
	index := make(map[string]int)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if i, seen := index[b.Name]; seen {
			if b.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		index[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   5   204724782 ns/op   6265552 B/op   11954 allocs/op
//
// The B/op and allocs/op columns are optional (benchmarks that do not call
// ReportAllocs under a run without -benchmem).
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix, keeping sub-benchmark slashes intact.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}
