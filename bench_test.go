package repro

// Benchmark harness: one benchmark per table and figure of the thesis'
// evaluation, plus micro-benchmarks for the monitoring substrate.  Each
// benchmark regenerates the corresponding artefact from scratch so that
// `go test -bench=. -benchmem` reproduces the entire evaluation; the
// rendered outputs themselves are available from cmd/icpa, cmd/scenarios,
// cmd/elevator and cmd/figures.

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/elevator"
	"repro/internal/goals"
	"repro/internal/hazard"
	"repro/internal/monitor"
	"repro/internal/scenarios"
	"repro/internal/sim"
	"repro/internal/temporal"
	"repro/internal/vehicle"
)

// ---------------------------------------------------------------------------
// Chapter 2 baselines (Figures 2.2 and 2.3)
// ---------------------------------------------------------------------------

func BenchmarkTableFig2_2_FaultTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree := hazard.VehicleUnintendedAccelerationTree()
		_ = tree.TopProbability()
		cuts := tree.MinimalCutSets()
		if len(cuts) == 0 {
			b.Fatal("no cut sets")
		}
		_ = tree.Render()
	}
}

func BenchmarkTableFig2_3_FMEA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := hazard.VehicleRadarFMEA()
		_ = f.HighestRisk(3)
		_ = f.Render()
	}
}

// ---------------------------------------------------------------------------
// Chapter 3 (Tables 3.1/3.2, Figures 3.1-3.6)
// ---------------------------------------------------------------------------

func BenchmarkTable3_1_AndReduction(b *testing.B) {
	space := goals.BooleanStateSpace("A", "B", "C", "D", "E")
	red := goals.AndReduction{
		Parent: goals.MustParse("G", "", "A => B"),
		Subgoals: []goals.Goal{
			goals.MustParse("G1", "", "A => C"),
			goals.MustParse("G2", "", "C => D"),
			goals.MustParse("G3", "", "D => B"),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !goals.CheckAndReduction(red, space).Complete() {
			b.Fatal("reduction should be complete")
		}
	}
}

func BenchmarkFigure3_Composability(b *testing.B) {
	space := goals.BooleanStateSpace("ObjectInPath", "Detected", "CAStop", "ACCStop", "StopVehicle")
	d := core.Decomposition{
		Parent: goals.MustParse("G", "", "ObjectInPath => StopVehicle"),
		Reductions: [][]goals.Goal{
			{goals.MustParse("G1a", "", "ObjectInPath => CAStop"), goals.MustParse("G1b", "", "CAStop => StopVehicle")},
			{goals.MustParse("G2a", "", "ObjectInPath => ACCStop"), goals.MustParse("G2b", "", "ACCStop => StopVehicle")},
		},
		Assumptions: []temporal.Formula{
			temporal.MustParse("StopVehicle => (CAStop | ACCStop)"),
			temporal.MustParse("CAStop => ObjectInPath"),
			temporal.MustParse("ACCStop => ObjectInPath"),
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Classify(d, space).Class != core.FullyComposableWithRedundancy {
			b.Fatal("unexpected classification")
		}
	}
}

// ---------------------------------------------------------------------------
// Chapter 4 (Tables 4.1-4.5, Appendix B)
// ---------------------------------------------------------------------------

func BenchmarkTable4_1_IndirectControlPaths(b *testing.B) {
	model := elevator.Model()
	goal := elevator.Goals().MustGet(elevator.GoalDoorClosedOrStopped)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths := model.IndirectControlPaths(goal, 0)
		if len(paths) != 2 {
			b.Fatal("expected two control paths")
		}
	}
}

func BenchmarkTable4_3_GoalElaboration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := elevator.DoorDriveICPA()
		if len(a.Subgoals) != 2 {
			b.Fatal("expected the Table 4.4 subgoals")
		}
		_ = a.Render()
	}
}

func BenchmarkTable4_4_Subgoals(b *testing.B) {
	a := elevator.DoorDriveICPA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := a.CheckRealizability()
		for _, r := range res {
			if !r.Realizable {
				b.Fatal("Table 4.4 subgoals should be realizable")
			}
		}
	}
}

func BenchmarkTable4_5_Realizability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := core.Table4_5()
		if len(tables) != 3 {
			b.Fatal("expected three variants")
		}
	}
}

func BenchmarkAppendixB_RealizabilityPatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := core.AppendixBTables()
		if len(tables) != 15 {
			b.Fatal("expected 15 tables")
		}
	}
}

// ---------------------------------------------------------------------------
// Chapter 4 evaluation on the elevator substrate
// ---------------------------------------------------------------------------

func benchmarkElevatorScenario(b *testing.B, sc elevator.Scenario, wantHit, wantFP bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := elevator.Run(sc)
		if wantHit && res.Summary.Hits == 0 {
			b.Fatal("expected a hit")
		}
		if wantFP && res.Summary.FalsePositives == 0 {
			b.Fatal("expected a false positive")
		}
	}
}

func BenchmarkElevatorNominal(b *testing.B) {
	benchmarkElevatorScenario(b, elevator.NominalScenario(), false, false)
}

func BenchmarkElevatorDoorDefect(b *testing.B) {
	benchmarkElevatorScenario(b, elevator.DoorDefectScenario(), true, false)
}

func BenchmarkElevatorHoistwayRedundancy(b *testing.B) {
	benchmarkElevatorScenario(b, elevator.HoistwayDefectScenario(), false, true)
}

// ---------------------------------------------------------------------------
// Chapter 5 (Tables 5.1-5.3, Appendix C)
// ---------------------------------------------------------------------------

func BenchmarkTable5_1_GoalDefinitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := scenarios.VehicleGoals()
		if r.Len() != 9 {
			b.Fatal("expected nine goals")
		}
	}
}

func BenchmarkTable5_3_MonitoringLocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plan := scenarios.MonitoringPlan()
		if len(plan) != 9 {
			b.Fatal("expected nine hierarchies")
		}
		_ = scenarios.RenderTable5_3()
	}
}

func BenchmarkAppendixC_VehicleICPA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		analyses := scenarios.AppendixCAnalyses()
		if len(analyses) != 9 {
			b.Fatal("expected nine analyses")
		}
	}
}

// ---------------------------------------------------------------------------
// Appendix D (Tables D.1-D.11): one benchmark per scenario run
// ---------------------------------------------------------------------------

func benchmarkScenario(b *testing.B, number int) {
	b.Helper()
	sc, ok := scenarios.ScenarioByNumber(number)
	if !ok {
		b.Fatalf("no scenario %d", number)
	}
	for i := 0; i < b.N; i++ {
		res := scenarios.Run(sc)
		_ = scenarios.RenderViolationTable(res)
	}
}

func BenchmarkTableD1_Scenario1(b *testing.B)   { benchmarkScenario(b, 1) }
func BenchmarkTableD2_Scenario2(b *testing.B)   { benchmarkScenario(b, 2) }
func BenchmarkTableD3_Scenario3(b *testing.B)   { benchmarkScenario(b, 3) }
func BenchmarkTableD4_Scenario4(b *testing.B)   { benchmarkScenario(b, 4) }
func BenchmarkTableD5_Scenario5(b *testing.B)   { benchmarkScenario(b, 5) }
func BenchmarkTableD6_Scenario6(b *testing.B)   { benchmarkScenario(b, 6) }
func BenchmarkTableD8_Scenario7(b *testing.B)   { benchmarkScenario(b, 7) }
func BenchmarkTableD9_Scenario8(b *testing.B)   { benchmarkScenario(b, 8) }
func BenchmarkTableD10_Scenario9(b *testing.B)  { benchmarkScenario(b, 9) }
func BenchmarkTableD11_Scenario10(b *testing.B) { benchmarkScenario(b, 10) }

// ---------------------------------------------------------------------------
// Batch scenario execution: the sequential baseline, the parallel Runner and
// a parameter sweep.  The sequential/parallel pair tracks the wall-clock win
// of the worker pool on multicore hardware (identical results either way).
// ---------------------------------------------------------------------------

func BenchmarkRunAllSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := scenarios.Runner{Workers: 1}.RunScenarios(scenarios.Scenarios(), scenarios.Options{})
		if len(results) != 10 {
			b.Fatal("expected ten results")
		}
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := scenarios.RunAll() // default Runner: GOMAXPROCS workers
		if len(results) != 10 {
			b.Fatal("expected ten results")
		}
	}
}

// BenchmarkSweepShortDuration runs a 40-variant sweep of 2 s runs through the
// parallel Runner, tracking generated-scenario throughput without the cost of
// full 20 s simulations per iteration.
func BenchmarkSweepShortDuration(b *testing.B) {
	sweep := shortSweep()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := scenarios.Runner{}.RunSweep(sweep)
		if len(res.Results) != 40 {
			b.Fatal("expected 40 sweep results")
		}
	}
}

// shortSweep is the 40-variant short-duration sweep shared by the retention
// benchmarks.
func shortSweep() scenarios.Sweep {
	var families []scenarios.Family
	for _, base := range scenarios.Scenarios() {
		base.Duration = 2 * time.Second
		families = append(families, scenarios.Family{
			Base:            base,
			InitialSpeeds:   []float64{base.InitialSpeed, base.InitialSpeed + 2},
			ObjectDistances: []float64{base.ObjectDistance, base.ObjectDistance * 0.8},
		})
	}
	return scenarios.Sweep{Families: families}
}

// BenchmarkSweepRetention contrasts the batch path (Runner.RunSweep:
// materialized jobs, every trace retained) with the streaming Engine under
// both retention policies over the same 40-variant sweep.  Run with -benchmem:
// SummaryOnly skips the per-step state snapshot entirely — the simulation
// records no trace — so B/op drops by roughly the full trace cost
// (thousands of map clones per run) versus RunSweep and KeepTrace, which is
// the allocation evidence that large sweeps can stream with O(workers)
// memory.
func BenchmarkSweepRetention(b *testing.B) {
	sweep := shortSweep()
	b.Run("RunSweepBatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := scenarios.Runner{}.RunSweep(sweep)
			if len(res.Results) != 40 {
				b.Fatal("expected 40 sweep results")
			}
		}
	})
	for _, retention := range []scenarios.Retention{scenarios.KeepTrace, scenarios.SummaryOnly} {
		retention := retention
		b.Run("Stream/"+retention.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine := scenarios.NewEngine(scenarios.WithRetention(retention))
				acc, err := engine.Accumulate(context.Background(), sweep.Source())
				if err != nil {
					b.Fatal(err)
				}
				if acc.Runs() != 40 {
					b.Fatal("expected 40 streamed runs")
				}
			}
		})
	}
}

// BenchmarkRunSweepSummaryOnly is the headline sweep benchmark: the
// 40-variant short-duration sweep streamed with summary-only retention —
// trace-free runs, one shared evaluation program compiled per worker and
// reused across its variants.  It tracks the end-to-end cost of the
// monitored-evaluation hot path across PRs.
func BenchmarkRunSweepSummaryOnly(b *testing.B) {
	sweep := shortSweep()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := scenarios.NewEngine(scenarios.WithRetention(scenarios.SummaryOnly))
		acc, err := engine.Accumulate(context.Background(), sweep.Source())
		if err != nil {
			b.Fatal(err)
		}
		if acc.Runs() != 40 {
			b.Fatal("expected 40 streamed runs")
		}
	}
}

// toleranceSweepK is the 60-variant grouped-execution benchmark sweep: the
// ten thesis scenarios at 2 s durations, each evaluated at six hit-matching
// tolerances.  The tolerance axis is innermost, so every family is one
// width-6 dynamics group.
func toleranceSweepK() scenarios.Sweep {
	var families []scenarios.Family
	for _, base := range scenarios.Scenarios() {
		base.Duration = 2 * time.Second
		families = append(families, scenarios.Family{
			Base:       base,
			Tolerances: []int{25, 50, 100, 150, 300, 450},
		})
	}
	return scenarios.Sweep{Families: families}
}

// BenchmarkToleranceSweepGrouped measures what the dynamics/monitor identity
// split buys on a K-tolerance sweep: Grouped simulates each trajectory once
// and classifies its recorded violation intervals at all six tolerances
// (FastSummaryAt); Ungrouped simulates every variant separately, the
// pre-split behaviour.  Identical results either way — the differential
// tests prove byte equality — so the ratio is pure saved simulation.
func BenchmarkToleranceSweepGrouped(b *testing.B) {
	sweep := toleranceSweepK()
	for _, mode := range []struct {
		name    string
		grouped bool
	}{{"Grouped", true}, {"Ungrouped", false}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine := scenarios.NewEngine(
					scenarios.WithRetention(scenarios.SummaryOnly),
					scenarios.WithGrouping(mode.grouped))
				acc, err := engine.Accumulate(context.Background(), sweep.Source())
				if err != nil {
					b.Fatal(err)
				}
				if acc.Runs() != sweep.Size() {
					b.Fatalf("ran %d of %d variants", acc.Runs(), sweep.Size())
				}
			}
		})
	}
}

// BenchmarkAblation_CorrectedScenario2 is the corrected-defects ablation: the
// same scenario run with every seeded defect removed, showing how much of
// the violation structure is attributable to the thesis' documented defects.
func BenchmarkAblation_CorrectedScenario2(b *testing.B) {
	sc, _ := scenarios.ScenarioByNumber(2)
	for i := 0; i < b.N; i++ {
		res := scenarios.RunCorrected(sc)
		if res.Collision {
			b.Fatal("the corrected system should avoid the collision")
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 5.2-5.15 and the classification machinery
// ---------------------------------------------------------------------------

func BenchmarkFigures5_SeriesExtraction(b *testing.B) {
	sc, _ := scenarios.ScenarioByNumber(1)
	res := scenarios.Run(sc)
	figs := scenarios.Figures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range figs {
			if f.Scenario == 1 {
				_ = scenarios.FigureSeries(res, f)
			}
		}
	}
}

func BenchmarkViolationClassification(b *testing.B) {
	sc, _ := scenarios.ScenarioByNumber(2)
	res := scenarios.Run(sc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = res.Suite.Classify()
		_ = res.Suite.Summary()
	}
}

// ---------------------------------------------------------------------------
// Monitoring substrate micro-benchmarks
// ---------------------------------------------------------------------------

// vehicleSizedBus returns the bus of a real scenario run after a few steps,
// so its schema holds exactly the signal vocabulary a production run interns
// (bus initialisation plus every component's handle set) and the
// commit/snapshot benchmarks measure the true register-file width.  Reusing
// scenarios.NewSimulation keeps one source of truth: a signal added to the
// scenario setup or a component automatically widens this bus too.
func vehicleSizedBus() *sim.Bus {
	sc, ok := scenarios.ScenarioByNumber(1)
	if !ok {
		panic("scenario 1 missing")
	}
	s := scenarios.NewSimulation(sc, scenarios.Options{})
	s.Run(10 * time.Millisecond) // step every component so all handles bind
	return s.Bus
}

// BenchmarkBusCommit measures the per-step cost of making buffered writes
// visible on a vehicle-sized bus: a register-file copy under the slot-indexed
// representation, versus a full map merge under the map-backed one.
func BenchmarkBusCommit(b *testing.B) {
	bus := vehicleSizedBus()
	speed := bus.NumVar(vehicle.SigVehicleSpeed)
	accel := bus.NumVar(vehicle.SigVehicleAccel)
	stopped := bus.BoolVar(vehicle.SigVehicleStopped)
	source := bus.StringVar(vehicle.SigAccelSource)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		speed.Write(float64(i))
		accel.Write(0.5)
		stopped.Write(i%2 == 0)
		source.Write(vehicle.SourceACC)
		bus.Commit()
	}
}

// BenchmarkStateSnapshot measures cloning the committed state, the per-step
// cost of trace retention.
func BenchmarkStateSnapshot(b *testing.B) {
	bus := vehicleSizedBus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bus.Snapshot()
	}
}

// BenchmarkStepperStep measures one incremental evaluation of a bounded-past
// goal formula compiled against the observed state's schema, the inner loop
// of every run-time monitor.
func BenchmarkStepperStep(b *testing.B) {
	schema := temporal.NewSchema()
	formula := temporal.MustParse(
		"(prevfor[500ms](Stopped) & !prevwithin[500ms](Throttle) & FromSubsystem) => Accel <= 0.05")
	stepper, err := temporal.CompileWithSchema(formula, time.Millisecond, schema)
	if err != nil {
		b.Fatal(err)
	}
	state := temporal.NewStateWith(schema).
		SetBool("Stopped", true).SetBool("Throttle", false).
		SetBool("FromSubsystem", true).SetNumber("Accel", 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepper.Step(state)
	}
}

func BenchmarkTemporalStepper(b *testing.B) {
	formula := temporal.MustParse(
		"(prevfor[500ms](Stopped) & !prevwithin[500ms](Throttle) & FromSubsystem) => Accel <= 0.05")
	stepper := temporal.MustCompile(formula, time.Millisecond)
	state := temporal.NewState().
		SetBool("Stopped", true).SetBool("Throttle", false).
		SetBool("FromSubsystem", true).SetNumber("Accel", 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stepper.Step(state)
	}
}

func BenchmarkMonitorObserve(b *testing.B) {
	g := scenarios.VehicleGoals().MustGet(scenarios.Goal1AutoAccel)
	m := monitor.MustNew(g, "Vehicle", time.Millisecond)
	state := temporal.NewState().
		SetBool(vehicle.SigAccelFromSubsystem, true).
		SetNumber(vehicle.SigVehicleAccel, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(state)
	}
}

// suiteObserveState builds the synthetic state the suite-observation
// benchmarks evaluate against.
func suiteObserveState() temporal.State {
	state := temporal.NewState().
		SetBool(vehicle.SigAccelFromSubsystem, true).
		SetNumber(vehicle.SigVehicleAccel, 1.2).
		SetNumber(vehicle.SigVehicleJerk, 0.5).
		SetBool(vehicle.SigAccelSteeringAgreement, true).
		SetBool(vehicle.SigVehicleStopped, false).
		SetBool(vehicle.SigInForwardMotion, true)
	for _, f := range vehicle.FeatureNames {
		state.SetNumber(vehicle.SigAccelRequest(f), 0.5)
		state.SetNumber(vehicle.SigRequestJerk(f), 0.1)
	}
	return state
}

// BenchmarkSuiteObserve contrasts the two evaluations of the full Table 5.3
// monitoring plan against one state: PerMonitor steps ~30 independent goal
// steppers (every shared atom re-read per monitor), Program evaluates the
// whole plan as one shared, hash-consed program in which each atom and each
// common subformula is read once per step.  The gap is the per-step cost the
// suite-level CSE removes from every simulated state of every sweep variant.
func BenchmarkSuiteObserve(b *testing.B) {
	b.Run("PerMonitor", func(b *testing.B) {
		state := suiteObserveState()
		suite := scenarios.BuildSuite(time.Millisecond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			suite.Observe(state)
		}
	})
	b.Run("Program", func(b *testing.B) {
		state := suiteObserveState()
		suite := scenarios.BuildSuiteWithSchema(time.Millisecond, state.Schema())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			suite.Observe(state)
		}
	})
}

// defectSweepShort is the lane-batching benchmark sweep: the 120-variant
// defect sweep at 2 s durations.  Its variants differ in defect sets and
// driver schedules — width-1 dynamics groups in long equal-duration runs —
// so grouping alone saves nothing and any speedup is pure lane batching.
func defectSweepShort() scenarios.Sweep {
	sw := scenarios.DefectSweep()
	for i := range sw.Families {
		sw.Families[i].Base.Duration = 2 * time.Second
	}
	return sw
}

// BenchmarkDefectSweepLaned measures what lane-batched evaluation buys on a
// dynamics-varying sweep: Laned steps four variants in lockstep through one
// widened simulation (one commit, one compiled-program pass and one observer
// dispatch per tick for the whole batch); Scalar simulates every variant
// separately, the pre-lane behaviour.  Identical results either way — the
// differential tests prove byte equality — so the ratio is the amortized
// per-tick overhead.
func BenchmarkDefectSweepLaned(b *testing.B) {
	sweep := defectSweepShort()
	for _, mode := range []struct {
		name  string
		lanes int
	}{{"Laned", 4}, {"Scalar", 1}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine := scenarios.NewEngine(
					scenarios.WithRetention(scenarios.SummaryOnly),
					scenarios.WithLanes(mode.lanes))
				acc, err := engine.Accumulate(context.Background(), sweep.Source())
				if err != nil {
					b.Fatal(err)
				}
				if acc.Runs() != sweep.Size() {
					b.Fatalf("ran %d of %d variants", acc.Runs(), sweep.Size())
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Distributed sweep execution (internal/dist)
// ---------------------------------------------------------------------------

// BenchmarkDistSweep measures the coordinator tax on the 1296-variant huge
// sweep: SingleProcess is one engine streaming the grid; Coordinator3 runs
// the same grid through the dist coordinator over three in-process workers —
// every result NDJSON-encoded, re-parsed, deduplicated, reordered and merged,
// exactly the work a multi-process deployment adds on top of simulation.
// The gap between the two is the protocol-and-merge overhead; it should stay
// a small fraction of the simulation cost.
//
// Under -short the huge grid (tens of seconds per iteration at full 20 s
// durations) is replaced by the same 1296-variant structure trimmed to 1 s
// runs, which exercises the identical protocol path at a fraction of the
// wall clock.
func BenchmarkDistSweep(b *testing.B) {
	sweep := scenarios.HugeSweep()
	if testing.Short() {
		for i := range sweep.Families {
			sweep.Families[i].Base.Duration = 1 * time.Second
		}
	}
	b.Run("SingleProcess", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			engine := scenarios.NewEngine(scenarios.WithRetention(scenarios.SummaryOnly))
			acc, err := engine.Accumulate(context.Background(), sweep.Source())
			if err != nil {
				b.Fatal(err)
			}
			if acc.Runs() != sweep.Size() {
				b.Fatalf("ran %d of %d variants", acc.Runs(), sweep.Size())
			}
		}
	})
	b.Run("Coordinator3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			coord, err := dist.New(dist.Options{
				Workers:   3,
				Transport: &dist.LocalTransport{Source: sweep.Source},
			})
			if err != nil {
				b.Fatal(err)
			}
			acc, err := coord.Run(context.Background(), sweep.Source(),
				scenarios.SinkFunc(func(scenarios.StreamResult) error { return nil }))
			if err != nil {
				b.Fatal(err)
			}
			if acc.Runs() != sweep.Size() {
				b.Fatalf("merged %d of %d variants", acc.Runs(), sweep.Size())
			}
		}
	})
}
