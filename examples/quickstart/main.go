// Quickstart: define a system safety goal in temporal logic, derive
// subsystem subgoals with Indirect Control Path Analysis, and monitor both
// at run time over a recorded trace.
//
// The example uses the thesis' motivating goal — "apply the brake when an
// object is in the vehicle path" — on a toy two-component system, and shows
// the three outputs a user of this library works with: the rendered ICPA
// table, the composability classification of the derived decomposition, and
// the hit / false-positive / false-negative classification produced by
// hierarchical run-time monitoring.
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/goals"
	"repro/internal/monitor"
	"repro/internal/temporal"
)

func main() {
	// 1. Define the system safety goal formally (thesis Eq. 3.4).
	parent := goals.MustParse("Maintain[StopWhenObjectInPath]",
		"If an object is in the vehicle path, the vehicle shall be stopped.",
		"prev(ObjectInPath) => VehicleStopped")

	// 2. Describe the functional decomposition: a detector that produces
	//    ObjectDetected from the environment, and a brake controller that
	//    stops the vehicle.
	model := core.NewSystemModel("quickstart vehicle")
	model.AddAgent(goals.NewAgent("Detector", goals.KindSensor,
		[]string{"ObjectInPath"}, []string{"ObjectDetected"}))
	model.AddAgent(goals.NewAgent("BrakeController", goals.KindSoftware,
		[]string{"ObjectDetected"}, []string{"BrakeCommand"}))
	model.AddAgent(goals.NewAgent("Brake", goals.KindActuator,
		[]string{"BrakeCommand"}, []string{"VehicleStopped"}))

	// 3. Run the ICPA: trace the indirect control paths, record the
	//    relationships, choose a coverage strategy and derive subgoals.
	analysis := core.NewAnalysis(parent, model)
	analysis.TracePaths(0)
	relDetect := analysis.AddRelationship("VehicleStopped", []string{"Detector"},
		temporal.MustParse("prev(ObjectInPath) => ObjectDetected"),
		"The detector reports objects within one state")
	relBrake := analysis.AddRelationship("VehicleStopped", []string{"Brake"},
		temporal.MustParse("prev(BrakeCommand == 'APPLY') => VehicleStopped"),
		"An applied brake stops the vehicle within one state")
	analysis.SetCoverage(core.CoverageStrategy{
		Assignment:  core.SingleResponsibility,
		Scope:       core.Restrictive,
		Responsible: []string{"BrakeController"},
	})
	analysis.AddElaboration(
		"prev(ObjectInPath) => VehicleStopped  <=  chain through detection and brake actuation",
		core.TacticSplitByChaining, []int{relDetect, relBrake}, "")
	subgoal := goals.MustParse("Achieve[BrakeOnDetection]",
		"If an object was detected, the brake shall be commanded to APPLY.",
		"prev(ObjectDetected) => BrakeCommand == 'APPLY'").
		WithAssignee("BrakeController")
	analysis.AddSubgoal(core.SubsystemGoal{
		Subsystem: "BrakeController",
		Goal:      subgoal,
		Observes:  []string{"ObjectDetected"},
		Controls:  []string{"BrakeCommand"},
	})
	fmt.Println(analysis.Render())

	// 4. Classify the decomposition (Chapter 3) over its propositional
	//    content: without the detection assumption the subgoal is not
	//    sufficient for the parent — the goal is emergent but partially
	//    composable, with missed detections as the hidden goal X.
	space := goals.BooleanStateSpace("ObjectInPath", "ObjectDetected", "VehicleStopped")
	propositionalParent := goals.MustParse(parent.Name, parent.InformalDef, "ObjectInPath => VehicleStopped")
	propositionalSubgoal := goals.MustParse(subgoal.Name, subgoal.InformalDef, "ObjectDetected => VehicleStopped")
	withoutAssumption := core.Classify(core.Decomposition{
		Parent:     propositionalParent,
		Reductions: [][]goals.Goal{{propositionalSubgoal}},
		Assumptions: []temporal.Formula{
			temporal.MustParse("ObjectDetected => ObjectInPath"),
			temporal.MustParse("VehicleStopped => ObjectDetected"),
		},
	}, space)
	fmt.Printf("Classification without the detection-completeness assumption: %s\n", withoutAssumption)

	// 5. Monitor the goal and the subgoal hierarchically over a recorded
	//    trace containing a detection fault.
	period := 10 * time.Millisecond
	parentMon := monitor.MustNew(parent, "Vehicle", period)
	subMon := monitor.MustNew(subgoal, "BrakeController", period)
	hierarchy := monitor.NewHierarchy(parentMon, 5, subMon)

	for i := 0; i < 100; i++ {
		objectPresent := i >= 40 && i < 70
		detected := objectPresent && i < 55 // the detector drops out at i=55
		braked := i >= 41 && i < 58
		state := temporal.NewState().
			SetBool("ObjectInPath", objectPresent).
			SetBool("ObjectDetected", detected).
			SetString("BrakeCommand", map[bool]string{true: "APPLY", false: "RELEASE"}[detected]).
			SetBool("VehicleStopped", braked)
		hierarchy.Observe(state)
	}
	hierarchy.Finish()

	summary := monitor.Summarize(hierarchy.Classify())
	fmt.Printf("Run-time monitoring: %s\n", summary)
	fmt.Printf("Interpretation: %s\n", summary.CompositionEvidence())
}
