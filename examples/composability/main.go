// Composability: the Chapter 3 definitions demonstrated on the thesis'
// ObjectInPath ⇒ StopVehicle example.
//
// The example classifies four decompositions of the same parent goal —
// fully composable, fully composable with redundancy, emergent but partially
// composable, and emergent — and shows the conjunctive-split, OR-reduction
// and safety-envelope restriction tactics of §3.3.4/§3.3.5.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/goals"
	"repro/internal/temporal"
)

func main() {
	parent := goals.MustParse("Maintain[StopWhenObjectInPath]",
		"The vehicle shall be stopped whenever an object is in its path.",
		"ObjectInPath => StopVehicle")
	space := goals.BooleanStateSpace("ObjectInPath", "Detected", "CAStop", "ACCStop", "StopVehicle")

	show := func(title string, d core.Decomposition) {
		res := core.Classify(d, space)
		fmt.Printf("%-70s %s\n", title, res)
	}

	// Eq. 3.5/3.6: exact decomposition through Collision Avoidance, with the
	// domain properties that make it exact.
	show("CA stops the vehicle, and only CA stops it (Eqs. 3.5-3.6)", core.Decomposition{
		Parent: parent,
		Reductions: [][]goals.Goal{{
			goals.MustParse("G1", "", "ObjectInPath <=> CAStop"),
			goals.MustParse("G2", "", "CAStop => StopVehicle"),
		}},
		Assumptions: []temporal.Formula{
			temporal.MustParse("StopVehicle => CAStop"),
			temporal.MustParse("CAStop => ObjectInPath"),
		},
	})

	// Eq. 3.12/3.13: redundant coverage by CA and ACC.
	show("CA or ACC stops the vehicle (redundant, Eqs. 3.12-3.13)", core.Decomposition{
		Parent: parent,
		Reductions: [][]goals.Goal{
			{goals.MustParse("G1a", "", "ObjectInPath => CAStop"), goals.MustParse("G1b", "", "CAStop => StopVehicle")},
			{goals.MustParse("G2a", "", "ObjectInPath => ACCStop"), goals.MustParse("G2b", "", "ACCStop => StopVehicle")},
		},
		Assumptions: []temporal.Formula{
			temporal.MustParse("StopVehicle => (CAStop | ACCStop)"),
			temporal.MustParse("CAStop => ObjectInPath"),
			temporal.MustParse("ACCStop => ObjectInPath"),
		},
	})

	// Eqs. 3.17-3.20: only detected objects are handled; undetected objects
	// are the hidden goal X.
	show("Only detected objects are handled (hidden X, Eqs. 3.17-3.20)", core.Decomposition{
		Parent:     parent,
		Reductions: [][]goals.Goal{{goals.MustParse("G1", "", "Detected => StopVehicle")}},
		Assumptions: []temporal.Formula{
			temporal.MustParse("Detected => ObjectInPath"),
			temporal.MustParse("StopVehicle => Detected"),
		},
	})

	// A decomposition about unrelated variables says nothing about the goal.
	show("Unrelated subgoals (emergent)", core.Decomposition{
		Parent:     parent,
		Reductions: [][]goals.Goal{{goals.MustParse("G1", "", "Detected => CAStop")}},
	})

	fmt.Println()

	// Conjunctive split (§3.3.4): a disjunctive antecedent splits into cases
	// that can be assured independently.
	uncertain := goals.MustParse("Maintain[StopOnAnyDetectionOutcome]",
		"Whether or not the object is detected, the vehicle shall be stopped when one is present.",
		"(InPathDetected | InPathNotDetected) => StopVehicle")
	if subs, ok := core.SplitConjunctiveGoal(uncertain); ok {
		fmt.Println("Conjunctive split of the detection-uncertainty goal (Eqs. 3.39-3.41):")
		for _, s := range subs {
			fmt.Printf("  %s\n", s.Formal)
		}
	}

	// OR-reduction (§3.3.5): keep only the realizable disjunct.
	disjunctive := goals.MustParse("Maintain[BrakeOrUnknownRecovery]",
		"Either the brake is applied or some unknown recovery behaviour occurs.",
		"BrakeApplied | UnknownRecovery")
	if reduced, ok := core.ORReduceGoal(disjunctive, func(f temporal.Formula) bool {
		return f.String() == "BrakeApplied"
	}); ok {
		fmt.Printf("OR-reduction keeps the realizable disjunct: %s (more restrictive)\n", reduced.Formal)
	}

	// Safety envelope (Eqs. 3.47-3.48): restrict the requesting variable by
	// a margin below the sensed limit.
	accel := goals.MustParse("Achieve[AutoAccelBelowThreshold]",
		"Autonomous acceleration shall not exceed 2 m/s².",
		"VehicleAcceleration <= 2")
	if sub, ok := core.SafetyEnvelope(accel, "VehicleAccelerationRequest", 0.5); ok {
		fmt.Printf("Safety envelope on the request variable: %s\n", sub.Formal)
	}
}
