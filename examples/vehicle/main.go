// Vehicle: one evaluation scenario of Chapter 5 end to end.
//
// The example runs Scenario 2 — the driver engages Park Assist just after
// Collision Avoidance begins a hard braking action — with the full Table 5.3
// monitoring suite, prints the Appendix D violation table, the per-detection
// classification, and the time series behind Figure 5.4 (CA remains
// "selected" while the acceleration command follows Park Assist's request).
package main

import (
	"fmt"

	"repro/internal/scenarios"
	"repro/internal/vehicle"
)

func main() {
	sc, ok := scenarios.ScenarioByNumber(2)
	if !ok {
		panic("scenario 2 missing")
	}
	result := scenarios.Run(sc)

	fmt.Println(scenarios.RenderViolationTable(result))
	fmt.Println(scenarios.RenderClassificationDetail(result))

	// Figure 5.4: the arbitration defect seen in the raw signals.
	var fig scenarios.Figure
	for _, f := range scenarios.Figures() {
		if f.ID == "5.4" {
			fig = f
		}
	}
	series := scenarios.FigureSeries(result, fig)
	fmt.Println("Figure 5.4 extract (1 s before the collision):")
	fmt.Printf("%-10s %-18s %-18s %s\n", "time [s]", "AccelCommand", "CA request", "CA selected")
	n := result.Trace.Len()
	for i := n - 1000; i < n; i += 200 {
		if i < 0 {
			continue
		}
		fmt.Printf("%-10.3f %-18.2f %-18.2f %.0f\n",
			series["time_s"][i],
			series[vehicle.SigAccelCommand][i],
			series[vehicle.SigAccelRequest(vehicle.SourceCA)][i],
			series[vehicle.SigSelected(vehicle.SourceCA)][i])
	}

	fmt.Println()
	fmt.Println("Design lessons surfaced by the monitors (thesis §6.1):")
	for _, l := range scenarios.LessonsFromICPA() {
		fmt.Printf("  - %s\n", l)
	}
}
