// Elevator: the Chapter 4 worked example end to end.
//
// The example prints the ICPA of Maintain[DoorClosedOrElevatorStopped]
// (Tables 4.1–4.4), runs the distributed elevator simulation in its nominal
// configuration and in a configuration with the door controller's
// open-while-moving defect seeded, and compares the hierarchical monitoring
// results: the defect is detected both at the system level and by the
// DoorController subgoal (a hit), while the redundant emergency brake masks
// the hoistway-limit defect (a false positive).
package main

import (
	"fmt"

	"repro/internal/elevator"
)

func main() {
	// The ICPA behind the Table 4.4 subgoals.
	analysis := elevator.DoorDriveICPA()
	fmt.Println(analysis.Render())

	fmt.Println("Subgoal realizability (after granting the cross-monitoring of Table 4.4):")
	for name, r := range analysis.CheckRealizability() {
		fmt.Printf("  %-55s %s\n", name, r)
	}
	fmt.Println()

	for _, sc := range []elevator.Scenario{
		elevator.NominalScenario(),
		elevator.DoorDefectScenario(),
		elevator.HoistwayDefectScenario(),
		elevator.HoistwayUnprotectedScenario(),
	} {
		res := elevator.Run(sc)
		fmt.Printf("Scenario %-22s  %s\n", sc.Name, res.Summary)
		for _, row := range res.Suite.Report() {
			fmt.Printf("    %s\n", row)
		}
		fmt.Printf("    %s\n\n", res.Summary.CompositionEvidence())
	}
}
